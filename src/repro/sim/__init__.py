"""Discrete-event simulation kernel underlying the grid substrate."""

from repro.sim.engine import Engine, ProcessHandle, Signal
from repro.sim.failures import BernoulliFailures, CrashRestartModel, FailureLog
from repro.sim.resources import CapacityResource, Grant
from repro.sim.stats import MetricSet, Tally, TimeSeries

__all__ = [
    "Engine",
    "Signal",
    "ProcessHandle",
    "CapacityResource",
    "Grant",
    "BernoulliFailures",
    "CrashRestartModel",
    "FailureLog",
    "Tally",
    "TimeSeries",
    "MetricSet",
]
