"""Failure models for the grid substrate.

Section 1 calls out that "the ability to recover from errors caused by the
failure of individual nodes is a critical aspect"; the re-planning
experiments (DESIGN.md A5) need controllable failure injection:

* :class:`BernoulliFailures` — each service invocation fails independently
  with probability *p* (models flaky containers);
* :class:`CrashRestartModel` — components alternate exponential up-times
  and down-times (models node crashes with repair), driven by a process on
  the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro._util import as_rng
from repro.errors import SimulationError
from repro.sim.engine import Engine

__all__ = ["BernoulliFailures", "CrashRestartModel", "FailureLog"]


@dataclass
class FailureLog:
    """Record of injected failures, for experiment assertions."""

    events: list[tuple[float, str, str]] = field(default_factory=list)

    def record(self, time: float, component: str, what: str) -> None:
        self.events.append((time, component, what))

    def count(self, what: str | None = None) -> int:
        if what is None:
            return len(self.events)
        return sum(1 for _, _, w in self.events if w == what)


class BernoulliFailures:
    """Per-invocation failure oracle.

    ``should_fail(component)`` draws a Bernoulli(p) per call; per-component
    probabilities override the global default.  Deterministic under a seed.
    """

    def __init__(
        self,
        probability: float = 0.0,
        rng: int | np.random.Generator | None = None,
        per_component: dict[str, float] | None = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"failure probability {probability} not in [0,1]")
        self.probability = probability
        self.per_component = dict(per_component or {})
        self.rng = as_rng(rng)
        self.log = FailureLog()

    def should_fail(self, component: str, now: float = 0.0) -> bool:
        p = self.per_component.get(component, self.probability)
        failed = bool(self.rng.random() < p)
        if failed:
            self.log.record(now, component, "invocation-failure")
        return failed

    def should_fail_fraction(
        self, component: str, fraction: float, now: float = 0.0
    ) -> bool:
        """Failure check for a *fraction* of an invocation.

        Scales the per-invocation probability so that running a whole
        invocation as N fraction-1/N slices has the same overall failure
        probability as one monolithic check: ``1 - (1-p)^fraction``.
        Used by checkpointable services, whose crashes strike mid-compute.
        """
        p = self.per_component.get(component, self.probability)
        scaled = 1.0 - (1.0 - p) ** fraction if p < 1.0 else 1.0
        failed = bool(self.rng.random() < scaled)
        if failed:
            self.log.record(now, component, "invocation-failure")
        return failed


class CrashRestartModel:
    """Exponential crash/restart cycling for named components.

    ``attach(engine, component, on_crash, on_restart)`` spawns a process
    that repeatedly sleeps ``Exp(mttf)``, calls *on_crash*, sleeps
    ``Exp(mttr)``, calls *on_restart*.  A zero or None mttf disables
    crashing for that component.
    """

    def __init__(
        self,
        mttf: float | None,
        mttr: float = 10.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if mttf is not None and mttf <= 0:
            raise SimulationError(f"mttf must be positive or None, got {mttf}")
        if mttr <= 0:
            raise SimulationError(f"mttr must be positive, got {mttr}")
        self.mttf = mttf
        self.mttr = mttr
        self.rng = as_rng(rng)
        self.log = FailureLog()

    def attach(
        self,
        engine: Engine,
        component: str,
        on_crash: Callable[[], None],
        on_restart: Callable[[], None],
    ) -> None:
        if self.mttf is None:
            return

        def cycle():
            while True:
                yield float(self.rng.exponential(self.mttf))
                self.log.record(engine.now, component, "crash")
                on_crash()
                yield float(self.rng.exponential(self.mttr))
                self.log.record(engine.now, component, "restart")
                on_restart()

        engine.spawn(cycle(), name=f"failures:{component}")
