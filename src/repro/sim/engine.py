"""Discrete-event simulation kernel.

The paper's environment is a distributed multi-agent system (Jade); we
reproduce its observable behaviour in-process with a classic event-driven
kernel: a priority queue of timestamped events, generator-based processes,
and signals for inter-process synchronization.

* :class:`Engine` — the event loop.  ``schedule`` posts a callback at
  ``now + delay``; ``spawn`` starts a coroutine-style process.
* Processes are plain generators.  They may ``yield``:

  - a number — sleep that many simulated seconds;
  - a :class:`Signal` — park until the signal fires (the fired payload
    becomes the value of the yield expression);
  - another :class:`ProcessHandle` — park until that process finishes
    (its return value becomes the yield value).

* :class:`Signal` — a single-shot broadcast event; late waiters on an
  already-fired signal resume immediately with the stored payload.

Determinism: ties in time are broken by schedule order (a monotone
sequence number), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.errors import SimulationError

__all__ = ["Engine", "Signal", "ProcessHandle"]

ProcessGen = Generator[Any, Any, Any]


class _Event:
    """One queue entry.  Hand-rolled (not a dataclass): heapq only needs
    ``__lt__``, and the dataclass-generated comparison builds two tuples
    per call — measurably the hottest function in large runs."""

    __slots__ = ("time", "seq", "action", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, action: Callable[..., None], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"_Event(t={self.time}, seq={self.seq}{flag})"


class Signal:
    """A single-shot event processes can wait on.

    ``fire(payload)`` wakes every current waiter and stores the payload so
    that later waiters resume immediately.  Firing twice is an error
    (create a new Signal per occurrence; see :class:`repro.grid.messages`
    for mailbox-style repeated delivery).
    """

    __slots__ = ("engine", "name", "_waiters", "fired", "payload")

    def __init__(self, engine: "Engine", name: str = "signal") -> None:
        self.engine = engine
        self.name = name
        self._waiters: list[ProcessHandle] = []
        self.fired = False
        self.payload: Any = None

    def fire(self, payload: Any = None) -> None:
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine.schedule(0.0, process._resume, payload)

    def _add_waiter(self, process: "ProcessHandle") -> None:
        if self.fired:
            self.engine.schedule(0.0, process._resume, self.payload)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"Signal({self.name!r}, {state})"


class ProcessHandle:
    """A running generator process; also waitable (join semantics)."""

    __slots__ = ("engine", "name", "_gen", "done", "result", "_done_signal", "failed")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self.done = False
        self.failed: BaseException | None = None
        self.result: Any = None
        self._done_signal = Signal(engine, f"{name}.done")

    def _resume(self, value: Any = None) -> None:
        if self.done:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Exception as exc:  # surfaces in Engine.run
            self.done = True
            self.failed = exc
            raise
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.engine.schedule(float(yielded), self._resume, None)
        elif isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, ProcessHandle):
            yielded._done_signal._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self._done_signal.fire(result)

    def _add_waiter(self, process: "ProcessHandle") -> None:
        self._done_signal._add_waiter(process)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"ProcessHandle({self.name!r}, {state})"


class Engine:
    """The simulation event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[_Event] = []
        self._seq = 0
        self.events_processed = 0

    # -- scheduling -------------------------------------------------------- #
    def schedule(
        self, delay: float, action: Callable[..., None], *args: Any
    ) -> _Event:
        """Post *action(*args)* at ``now + delay``; returns a cancellable
        handle (set ``.cancelled = True``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = _Event(self.now + delay, self._seq, action, args)
        heapq.heappush(self._queue, event)
        return event

    def signal(self, name: str = "signal") -> Signal:
        return Signal(self, name)

    def spawn(self, gen: ProcessGen, name: str = "process") -> ProcessHandle:
        """Start a generator process; it first runs at the current time."""
        if not isinstance(gen, GeneratorType):
            raise SimulationError(
                f"spawn needs a generator, got {type(gen).__name__}"
            )
        process = ProcessHandle(self, gen, name)
        self.schedule(0.0, process._resume, None)
        return process

    def spawn_all(
        self, gens: Iterable[tuple[str, ProcessGen]]
    ) -> list[ProcessHandle]:
        return [self.spawn(gen, name) for name, gen in gens]

    # -- running ------------------------------------------------------------ #
    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = event.time
            self.events_processed += 1
            event.action(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue.

        *until* stops the clock at that simulated time (events beyond it
        stay queued); *max_events* guards against runaway simulations.
        Returns the final clock value.
        """
        processed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
            self.step()
            processed += 1
        else:
            if until is not None:
                self.now = until
        return self.now

    @property
    def pending(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)
