"""Discrete-event simulation kernel.

The paper's environment is a distributed multi-agent system (Jade); we
reproduce its observable behaviour in-process with a classic event-driven
kernel: a priority queue of timestamped events, generator-based processes,
and signals for inter-process synchronization.

* :class:`Engine` — the event loop.  ``schedule`` posts a callback at
  ``now + delay``; ``spawn`` starts a coroutine-style process.
* Processes are plain generators.  They may ``yield``:

  - a number — sleep that many simulated seconds;
  - a :class:`Signal` — park until the signal fires (the fired payload
    becomes the value of the yield expression);
  - another :class:`ProcessHandle` — park until that process finishes
    (its return value becomes the yield value).

* :class:`Signal` — a single-shot broadcast event; late waiters on an
  already-fired signal resume immediately with the stored payload.

Determinism: ties in time are broken by schedule order (a monotone
sequence number), so runs are exactly reproducible.

Throughput internals (the observable semantics above are unchanged):

* **Tuple-keyed heap** — the priority queue stores ``(time, seq, event)``
  triples, so heap sifting compares C-level tuples instead of calling a
  Python ``__lt__`` (the previous hottest function in large runs).
* **Batched same-tick dispatch** — when the clock advances to a new time
  ``T``, every queued event at exactly ``T`` is drained into a FIFO batch
  and dispatched without further heap traffic; zero-delay events posted
  *during* the tick (signal wakeups, mailbox deliveries) append to the
  same batch in O(1).  Because same-time events always execute in
  schedule (``seq``) order and mid-tick posts always carry the largest
  ``seq``, the batch replays the heap order exactly — event-for-event —
  which is what keeps protocol traces byte-identical.
* **Event pool** — internal fire-and-forget events (process wakeups,
  signal resumes, deliveries posted via :meth:`Engine.schedule_discard`)
  recycle ``_Event`` instances through a preallocated free list instead
  of churning one allocation per event.  :meth:`Engine.schedule` still
  returns a fresh, never-recycled handle, so held handles stay valid and
  cancellable forever.
* **O(1) accounting** — a live-event counter maintained on
  schedule/cancel/pop makes :attr:`Engine.pending` and cancellation O(1);
  cancelled entries are lazily discarded when they surface.

``Engine(batched=False)`` selects the legacy one-event-at-a-time heap
dispatch (and per-waiter signal wakeups) — the comparator the
equivalence tests and the byte-identical-trace gate run against.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from types import GeneratorType
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.errors import SimulationError

__all__ = ["Engine", "Signal", "ProcessHandle"]

ProcessGen = Generator[Any, Any, Any]


class _Event:
    """One queue entry and (for :meth:`Engine.schedule`) the caller's
    cancellation handle.

    ``cancelled`` is a property so direct assignment
    (``handle.cancelled = True`` — the historical API) keeps the engine's
    live-event counter exact; :meth:`Engine.cancel` is the same operation
    spelled as a method.  Pooled events (``schedule_discard``) are
    recycled after they run, which is safe exactly because their handle is
    never handed out.
    """

    __slots__ = ("engine", "time", "seq", "action", "args", "_cancelled", "_in_queue", "_pooled")

    def __init__(
        self,
        engine: "Engine",
        time: float,
        seq: int,
        action: Callable[..., None] | None,
        args: tuple,
        pooled: bool = False,
    ) -> None:
        self.engine = engine
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self._cancelled = False
        self._in_queue = False
        self._pooled = pooled

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        value = bool(value)
        if value == self._cancelled:
            return
        self._cancelled = value
        if self._in_queue:
            # Still queued: keep the engine's live-event counter exact
            # (uncancelling before the event surfaces revives it).
            self.engine._live += -1 if value else 1

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self._cancelled else ""
        return f"_Event(t={self.time}, seq={self.seq}{flag})"


def _resume_all(waiters: list["ProcessHandle"], payload: Any) -> None:
    """Resume a signal's waiters back-to-back (one batched wakeup event
    replaces one event per waiter; order is unchanged — see
    :meth:`Signal.fire`)."""
    for process in waiters:
        process._resume(payload)


class Signal:
    """A single-shot event processes can wait on.

    ``fire(payload)`` wakes every current waiter and stores the payload so
    that later waiters resume immediately.  Firing twice is an error
    (create a new Signal per occurrence; see :class:`repro.grid.messages`
    for mailbox-style repeated delivery).
    """

    __slots__ = ("engine", "name", "_waiters", "fired", "payload")

    def __init__(self, engine: "Engine", name: str = "signal") -> None:
        self.engine = engine
        self.name = name
        self._waiters: list[ProcessHandle] = []
        self.fired = False
        self.payload: Any = None

    def fire(self, payload: Any = None) -> None:
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        engine = self.engine
        if not waiters:
            return
        if engine.coalesce:
            # Aggressive timer coalescing (opt-in): resume parked waiters
            # directly instead of scheduling a zero-delay wakeup event —
            # the fire→schedule→resume chain collapses to a call.  Still
            # fully deterministic, but the waiter now runs *before* other
            # events already queued at this tick (and before the firing
            # action's remaining statements), so intra-tick interleaving —
            # and therefore id streams/traces — can differ from the
            # event-ordered kernels.  Late waiters (_add_waiter on a fired
            # signal) still go through the queue, which keeps recursion
            # bounded by the agent-chain depth rather than queue depth.
            for process in waiters:
                process._resume(payload)
            return
        if len(waiters) == 1:
            engine.schedule_discard(0.0, waiters[0]._resume, payload)
        elif engine.batched:
            # One wakeup event resuming every waiter in order.  Identical
            # to per-waiter events: the per-waiter wakeups would carry
            # consecutive seqs (nothing is scheduled between them) and so
            # execute back-to-back, and anything a resumed waiter posts
            # carries a later seq either way.
            engine.schedule_discard(0.0, _resume_all, waiters, payload)
        else:
            for process in waiters:
                engine.schedule_discard(0.0, process._resume, payload)

    def _add_waiter(self, process: "ProcessHandle") -> None:
        if self.fired:
            self.engine.schedule_discard(0.0, process._resume, self.payload)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"Signal({self.name!r}, {state})"


class ProcessHandle:
    """A running generator process; also waitable (join semantics)."""

    __slots__ = ("engine", "name", "_gen", "done", "result", "_done_signal", "failed")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self.done = False
        self.failed: BaseException | None = None
        self.result: Any = None
        # Created on first join — most processes (e.g. one handler per
        # request) are never waited on, and per-spawn Signal construction
        # was measurable in enactment profiles.
        self._done_signal: Signal | None = None

    def _resume(self, value: Any = None) -> None:
        if self.done:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Exception as exc:  # surfaces in Engine.run
            self.done = True
            self.failed = exc
            raise
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.engine.schedule_discard(float(yielded), self._resume, None)
        elif isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, ProcessHandle):
            yielded._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        if self._done_signal is not None:
            self._done_signal.fire(result)

    def _add_waiter(self, process: "ProcessHandle") -> None:
        if self.done:
            # Late join: resume immediately with the stored result (same
            # semantics as waiting on an already-fired done signal).
            self.engine.schedule_discard(0.0, process._resume, self.result)
            return
        signal = self._done_signal
        if signal is None:
            signal = self._done_signal = Signal(self.engine, f"{self.name}.done")
        signal._add_waiter(process)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"ProcessHandle({self.name!r}, {state})"


#: Events preallocated into a fresh engine's free list, and the cap the
#: list grows back to as events recycle.  Sized for one tick's worth of
#: wakeups in large runs; beyond it events simply fall back to the GC.
_POOL_SIZE = 512


class Engine:
    """The simulation event loop.

    *batched* selects the same-tick batch dispatcher (the default); pass
    ``False`` for the legacy one-event-at-a-time heap loop.  Both produce
    identical event orderings — the flag exists as the opt-out/comparison
    knob for the equivalence and trace-identity gates.
    """

    def __init__(self, batched: bool = True, coalesce: bool = False) -> None:
        self.now = 0.0
        self.batched = batched
        #: Aggressive zero-delay coalescing (see :meth:`Signal.fire`).
        #: Default off: it preserves determinism but not the exact
        #: intra-tick interleaving the byte-identical-trace gate checks.
        self.coalesce = coalesce
        #: Heap of (time, seq, event): C-level tuple comparison, seq
        #: uniqueness guarantees the event itself is never compared.
        self._heap: list[tuple[float, int, _Event]] = []
        #: FIFO of events at exactly ``now`` (the current tick's batch).
        self._tick: deque[_Event] = deque()
        self._seq = 0
        #: Scheduled, not-yet-dispatched, not-cancelled events (O(1) pending).
        self._live = 0
        self.events_processed = 0
        self._free: list[_Event] = [
            _Event(self, 0.0, 0, None, (), pooled=True) for _ in range(_POOL_SIZE)
        ]

    # -- scheduling -------------------------------------------------------- #
    def schedule(
        self, delay: float, action: Callable[..., None], *args: Any
    ) -> _Event:
        """Post *action(*args)* at ``now + delay``; returns a cancellable
        handle (``engine.cancel(handle)``, or the historical
        ``handle.cancelled = True``).  Handles are never recycled."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = _Event(self, self.now + delay, self._seq, action, args)
        self._push(event)
        return event

    def schedule_discard(
        self, delay: float, action: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned and the
        event object is recycled through the engine's pool after it runs.
        The hot path for process wakeups, signal resumes and message
        deliveries — callers that never cancel."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = self._seq
            event.action = action
            event.args = args
            event._cancelled = False
        else:
            event = _Event(self, time, self._seq, action, args, pooled=True)
        # _push, inlined (this is the hottest function in enactment runs).
        event._in_queue = True
        self._live += 1
        if self.batched and time == self.now:
            self._tick.append(event)
        else:
            heappush(self._heap, (time, self._seq, event))

    def _push(self, event: _Event) -> None:
        event._in_queue = True
        self._live += 1
        if self.batched and event.time == self.now:
            # Same-tick post: every earlier event at ``now`` is already in
            # the batch (drained when the tick began), so FIFO == seq order.
            self._tick.append(event)
        else:
            heappush(self._heap, (event.time, event.seq, event))

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event (O(1); the queue entry is discarded
        lazily when it surfaces)."""
        event.cancelled = True

    def signal(self, name: str = "signal") -> Signal:
        return Signal(self, name)

    def spawn(self, gen: ProcessGen, name: str = "process") -> ProcessHandle:
        """Start a generator process; it first runs at the current time."""
        if not isinstance(gen, GeneratorType):
            raise SimulationError(
                f"spawn needs a generator, got {type(gen).__name__}"
            )
        process = ProcessHandle(self, gen, name)
        if self.coalesce:
            # Run the first step inline (to its first real wait) instead
            # of through a zero-delay event — same caveat as coalesced
            # signal fires: deterministic, different intra-tick order.
            process._resume(None)
        else:
            self.schedule_discard(0.0, process._resume, None)
        return process

    def spawn_all(
        self, gens: Iterable[tuple[str, ProcessGen]]
    ) -> list[ProcessHandle]:
        return [self.spawn(gen, name) for name, gen in gens]

    # -- dispatch ---------------------------------------------------------- #
    def _recycle(self, event: _Event) -> None:
        event.action = None
        event.args = ()
        if len(self._free) < _POOL_SIZE:
            self._free.append(event)

    def _acquire(self, until: float | None) -> _Event | None:
        """The next runnable event, with the clock-advance bookkeeping:
        pops lazily-cancelled entries (uncharged), drains the new tick
        into the batch, and stops (returning None) at *until*."""
        tick = self._tick
        heap = self._heap
        while tick:
            event = tick.popleft()
            event._in_queue = False
            if event._cancelled:
                if event._pooled:
                    self._recycle(event)
                continue
            return event
        while heap:
            entry = heap[0]
            event = entry[2]
            if event._cancelled:
                heappop(heap)
                event._in_queue = False
                if event._pooled:
                    self._recycle(event)
                continue
            time = entry[0]
            if until is not None and time > until:
                return None
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            heappop(heap)
            event._in_queue = False
            if self.batched:
                # Start of a new tick: move every event at this exact time
                # into the FIFO batch (they pop in seq order), so the rest
                # of the tick runs without heap traffic.
                while heap and heap[0][0] == time:
                    follower = heappop(heap)[2]
                    tick.append(follower)
            return event
        return None

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        event = self._acquire(None)
        if event is None:
            return False
        self._live -= 1
        self.now = event.time
        self.events_processed += 1
        event.action(*event.args)
        if event._pooled:
            self._recycle(event)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue.

        *until* stops the clock at that simulated time (events beyond it
        stay queued; the clock never moves backwards, so an *until* in the
        past is a no-op); *max_events* guards against runaway simulations
        and charges only dispatched events — lazily-discarded cancelled
        entries are free.  Returns the final clock value.
        """
        processed = 0
        acquire = self._acquire
        tick = self._tick
        free = self._free
        while True:
            # Fast path: the current tick's batch, inlined from _acquire
            # (one bound-method call per event was measurable at 10^5+
            # events per run; the heap/cancel/until handling stays in
            # _acquire, which this falls back to whenever the batch runs
            # dry or an edge case surfaces).
            if tick:
                event = tick.popleft()
                event._in_queue = False
                if event._cancelled:
                    if event._pooled and len(free) < _POOL_SIZE:
                        event.action = None
                        event.args = ()
                        free.append(event)
                    continue
            else:
                event = acquire(until)
                if event is None:
                    if until is not None and until > self.now:
                        self.now = until
                    return self.now
            if max_events is not None and processed >= max_events:
                # Put the event back (front of its tick) so the queue is
                # intact for a post-mortem or a resumed run.
                event._in_queue = True
                self._tick.appendleft(event)
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            processed += 1
            event.action(*event.args)
            if event._pooled and len(free) < _POOL_SIZE:
                event.action = None
                event.args = ()
                free.append(event)

    @property
    def pending(self) -> int:
        """Scheduled-and-live event count (O(1): a counter maintained on
        schedule/cancel/pop, not a queue scan)."""
        return self._live
