"""Capacity-constrained resources for the simulation kernel.

:class:`CapacityResource` models anything with a finite number of slots —
CPU slots on a grid node, concurrent-activity limits on an application
container, bandwidth tokens on a network link.  Processes acquire a slot by
yielding the signal returned from :meth:`CapacityResource.acquire` and must
release it when done (use the grant token so double releases are caught).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.engine import Engine, Signal

__all__ = ["CapacityResource", "Grant"]


@dataclass
class Grant:
    """A held slot; pass back to :meth:`CapacityResource.release`."""

    resource: "CapacityResource"
    index: int
    released: bool = False


class CapacityResource:
    """FIFO resource with *capacity* identical slots."""

    def __init__(self, engine: Engine, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: deque[Signal] = deque()
        self._grant_seq = 0
        # Telemetry for utilization accounting.
        self._busy_time = 0.0
        self._last_change = engine.now

    # -- acquisition --------------------------------------------------------- #
    def acquire(self) -> Signal:
        """Returns a signal that fires with a :class:`Grant` once a slot is
        free.  Yield it from a process::

            grant = yield resource.acquire()
            ...
            resource.release(grant)
        """
        signal = self.engine.signal(f"{self.name}.acquire")
        if self.in_use < self.capacity:
            self._take()
            signal.fire(self._new_grant())
        else:
            self._waiting.append(signal)
        return signal

    def try_acquire(self) -> Grant | None:
        """Immediate, non-blocking acquisition; None when full."""
        if self.in_use < self.capacity:
            self._take()
            return self._new_grant()
        return None

    def release(self, grant: Grant) -> None:
        if grant.resource is not self:
            raise SimulationError(
                f"grant from {grant.resource.name!r} released on {self.name!r}"
            )
        if grant.released:
            raise SimulationError(f"grant {grant.index} double-released")
        grant.released = True
        self._account()
        self.in_use -= 1
        if self._waiting and self.in_use < self.capacity:
            signal = self._waiting.popleft()
            self._take()
            signal.fire(self._new_grant())

    # -- internals ----------------------------------------------------------- #
    def _new_grant(self) -> Grant:
        self._grant_seq += 1
        return Grant(self, self._grant_seq)

    def _take(self) -> None:
        self._account()
        self.in_use += 1

    def _account(self) -> None:
        now = self.engine.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    # -- telemetry ------------------------------------------------------------ #
    @property
    def queued(self) -> int:
        return len(self._waiting)

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since construction."""
        self._account()
        elapsed = self.engine.now
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (self.capacity * elapsed)
