"""Plan trees (Section 3.4.1) and their conversions (Figures 4-7, 10-11)."""

from repro.plan.convert import (
    ast_to_tree,
    normalize,
    process_to_tree,
    tree_to_ast,
    tree_to_process,
)
from repro.plan.metrics import (
    controller_census,
    representation_efficiency,
    summary,
    terminal_census,
)
from repro.plan.randgen import random_shape, random_tree
from repro.plan.tree import (
    Controller,
    ControllerKind,
    PlanNode,
    Terminal,
    concurrent,
    iter_nodes,
    iterative,
    pretty,
    replace_at,
    selective,
    sequential,
    subtree_at,
    terminal,
    tree_depth,
    tree_size,
)

__all__ = [
    "PlanNode",
    "Terminal",
    "Controller",
    "ControllerKind",
    "sequential",
    "concurrent",
    "selective",
    "iterative",
    "terminal",
    "iter_nodes",
    "subtree_at",
    "replace_at",
    "tree_size",
    "tree_depth",
    "pretty",
    "ast_to_tree",
    "tree_to_ast",
    "tree_to_process",
    "process_to_tree",
    "normalize",
    "random_tree",
    "random_shape",
    "representation_efficiency",
    "controller_census",
    "terminal_census",
    "summary",
]
