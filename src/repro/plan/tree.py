"""Plan trees — the genotype of the GP planner (Section 3.4.1).

A plan tree has *terminal nodes* (leaves naming end-user activities) and
*controller nodes* (internal nodes with at least one child) of four kinds:

* ``SEQUENTIAL`` — children execute left to right;
* ``CONCURRENT`` — children may run in any order / in parallel, all must
  complete (corresponds to a Fork/Join pair);
* ``SELECTIVE`` — exactly one child executes (Choice/Merge pair);
* ``ITERATIVE`` — children execute repeatedly until a stopping condition
  (a loop closed by a Merge/Choice pair).

Unlike the textual AST of :mod:`repro.process.ast_nodes`, plan trees carry
no conditions and place no lower bound of two on branch counts — the GP
operators freely produce one-child controllers, which the tree->process
conversion collapses.

Nodes are immutable; structural edits (crossover, mutation) build new trees
via :func:`replace_at`.  Paths are tuples of child indices from the root
(``()`` is the root itself).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import PlanError

__all__ = [
    "ControllerKind",
    "PlanNode",
    "Terminal",
    "Controller",
    "sequential",
    "concurrent",
    "selective",
    "iterative",
    "terminal",
    "iter_nodes",
    "subtree_at",
    "replace_at",
    "tree_size",
    "tree_depth",
    "pretty",
]

Path = tuple[int, ...]


class ControllerKind(enum.Enum):
    SEQUENTIAL = "Sequential"
    CONCURRENT = "Concurrent"
    SELECTIVE = "Selective"
    ITERATIVE = "Iterative"


class PlanNode:
    """Base class for plan-tree nodes."""

    __slots__ = ()

    @property
    def size(self) -> int:
        """Number of nodes in the subtree (the paper's plan-tree size)."""
        raise NotImplementedError

    def walk(self) -> Iterator["PlanNode"]:
        raise NotImplementedError

    def activities(self) -> list[str]:
        """Activity names at the leaves, left to right."""
        return [n.activity for n in self.walk() if isinstance(n, Terminal)]

    def struct_key(self) -> tuple:
        """Canonical, hashable structural key of the subtree.

        Two trees have equal keys iff they are structurally equal (same
        shape, kinds and leaf activities), so the key can stand in for the
        tree itself in fitness caches and dedup maps.  Computed once per
        node and cached — tournament selection and surviving individuals
        hit the evaluator with the same instances over and over, and
        recursive dataclass hashing of a 40-node tree on every lookup is
        what this avoids.
        """
        raise NotImplementedError

    def __getstate__(self) -> dict:
        # Keep cached structural keys out of pickles: process-pool dispatch
        # ships trees to workers, and the key roughly doubles the payload.
        state = dict(self.__dict__)
        state.pop("_skey", None)
        return state


@dataclass(frozen=True)
class Terminal(PlanNode):
    """A leaf: one end-user activity."""

    activity: str

    def __post_init__(self) -> None:
        if not self.activity:
            raise PlanError("terminal node needs an activity name")

    @property
    def size(self) -> int:
        return 1

    def walk(self) -> Iterator[PlanNode]:
        yield self

    def struct_key(self) -> tuple:
        key = getattr(self, "_skey", None)
        if key is None:
            key = ("T", self.activity)
            object.__setattr__(self, "_skey", key)
        return key

    def __str__(self) -> str:
        return self.activity


@dataclass(frozen=True)
class Controller(PlanNode):
    """An internal node: a controller kind plus one or more children."""

    kind: ControllerKind
    children: tuple[PlanNode, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))
        if not self.children:
            raise PlanError(
                f"{self.kind.value} controller needs at least one child"
            )
        for child in self.children:
            if not isinstance(child, PlanNode):
                raise PlanError(f"bad child {child!r}")

    @property
    def size(self) -> int:
        return 1 + sum(child.size for child in self.children)

    def walk(self) -> Iterator[PlanNode]:
        yield self
        for child in self.children:
            yield from child.walk()

    def struct_key(self) -> tuple:
        key = getattr(self, "_skey", None)
        if key is None:
            key = (self.kind.value, *(child.struct_key() for child in self.children))
            object.__setattr__(self, "_skey", key)
        return key

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.children)
        return f"{self.kind.value}[{inner}]"


# -- constructors ------------------------------------------------------------ #
def terminal(activity: str) -> Terminal:
    return Terminal(activity)


def _as_node(item: PlanNode | str) -> PlanNode:
    return Terminal(item) if isinstance(item, str) else item


def sequential(*children: PlanNode | str) -> Controller:
    return Controller(ControllerKind.SEQUENTIAL, tuple(map(_as_node, children)))


def concurrent(*children: PlanNode | str) -> Controller:
    return Controller(ControllerKind.CONCURRENT, tuple(map(_as_node, children)))


def selective(*children: PlanNode | str) -> Controller:
    return Controller(ControllerKind.SELECTIVE, tuple(map(_as_node, children)))


def iterative(*children: PlanNode | str) -> Controller:
    return Controller(ControllerKind.ITERATIVE, tuple(map(_as_node, children)))


# -- structural access -------------------------------------------------------- #
def iter_nodes(root: PlanNode) -> Iterator[tuple[Path, PlanNode]]:
    """Pre-order traversal yielding (path, node) pairs."""
    stack: list[tuple[Path, PlanNode]] = [((), root)]
    while stack:
        path, node = stack.pop()
        yield path, node
        if isinstance(node, Controller):
            for idx in range(len(node.children) - 1, -1, -1):
                stack.append((path + (idx,), node.children[idx]))


def subtree_at(root: PlanNode, path: Path) -> PlanNode:
    """The node at *path* (raises :class:`PlanError` on a bad path)."""
    node = root
    for idx in path:
        if not isinstance(node, Controller) or not 0 <= idx < len(node.children):
            raise PlanError(f"invalid path {path!r}")
        node = node.children[idx]
    return node


def replace_at(root: PlanNode, path: Path, replacement: PlanNode) -> PlanNode:
    """A new tree with the subtree at *path* swapped for *replacement*."""
    if not path:
        return replacement
    if not isinstance(root, Controller) or not 0 <= path[0] < len(root.children):
        raise PlanError(f"invalid path {path!r}")
    idx = path[0]
    new_child = replace_at(root.children[idx], path[1:], replacement)
    children = root.children[:idx] + (new_child,) + root.children[idx + 1 :]
    return Controller(root.kind, children)


def tree_size(root: PlanNode) -> int:
    return root.size


def tree_depth(root: PlanNode) -> int:
    """Depth in edges: a single terminal has depth 0."""
    if isinstance(root, Terminal):
        return 0
    assert isinstance(root, Controller)
    return 1 + max(tree_depth(child) for child in root.children)


def pretty(root: PlanNode, level: int = 0) -> str:
    """Indented multi-line rendering (Figure-11 style)."""
    pad = "  " * level
    if isinstance(root, Terminal):
        return f"{pad}{root.activity}"
    assert isinstance(root, Controller)
    lines = [f"{pad}{root.kind.value}"]
    for child in root.children:
        lines.append(pretty(child, level + 1))
    return "\n".join(lines)
