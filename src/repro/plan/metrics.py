"""Plan-tree metrics used in fitness evaluation and experiment tables."""

from __future__ import annotations

from collections import Counter

from repro.plan.tree import Controller, ControllerKind, PlanNode, Terminal, tree_depth

__all__ = [
    "representation_efficiency",
    "controller_census",
    "terminal_census",
    "summary",
]


def representation_efficiency(tree: PlanNode, smax: int) -> float:
    """Eq. 3: ``fr = 1 - size/Smax`` (clamped at 0 for oversized trees).

    A small plan tree receives a high fr; trees at the Smax bound score 0.
    """
    if smax <= 0:
        raise ValueError(f"Smax must be positive, got {smax}")
    return max(0.0, 1.0 - tree.size / smax)


def controller_census(tree: PlanNode) -> Counter:
    """Count of each controller kind in the tree."""
    census: Counter = Counter()
    for node in tree.walk():
        if isinstance(node, Controller):
            census[node.kind] += 1
    return census


def terminal_census(tree: PlanNode) -> Counter:
    """Count of each activity name at the leaves."""
    census: Counter = Counter()
    for node in tree.walk():
        if isinstance(node, Terminal):
            census[node.activity] += 1
    return census


def summary(tree: PlanNode) -> dict:
    """Dict of headline metrics, used by experiment tables."""
    controllers = controller_census(tree)
    return {
        "size": tree.size,
        "depth": tree_depth(tree),
        "terminals": sum(terminal_census(tree).values()),
        "sequential": controllers.get(ControllerKind.SEQUENTIAL, 0),
        "concurrent": controllers.get(ControllerKind.CONCURRENT, 0),
        "selective": controllers.get(ControllerKind.SELECTIVE, 0),
        "iterative": controllers.get(ControllerKind.ITERATIVE, 0),
    }
