"""Random plan-tree generation (Section 3.4.2 solution initialization).

The paper initializes in two steps: (1) generate an arbitrary tree
structure of a given size, (2) instantiate internal nodes with controller
kinds chosen uniformly from the four kinds, and leaves with end-user
activities chosen uniformly from the activity set T.

:func:`random_tree` realizes exactly that.  The shape step draws a uniform
composition: a tree of *n* nodes is a root with k children whose sizes form
a random composition of n-1 (k itself uniform over the feasible range,
bounded by *max_branch* to keep trees plausibly workflow-shaped).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import as_rng
from repro.errors import PlanError
from repro.plan.tree import Controller, ControllerKind, PlanNode, Terminal

__all__ = ["random_tree", "random_shape"]

_KINDS = tuple(ControllerKind)


def random_shape(
    n: int,
    rng: np.random.Generator,
    max_branch: int = 4,
) -> list[int]:
    """Split ``n - 1`` child-subtree node budgets for a tree of *n* nodes.

    Returns the (possibly empty) list of child sizes; an empty list means a
    terminal node.  Compositions are sampled by choosing k uniformly then
    splitting with uniformly-placed bars, giving good shape diversity
    without the degenerate all-left-comb bias of naive recursive splits.
    """
    if n < 1:
        raise PlanError(f"tree size must be >= 1, got {n}")
    if n == 1:
        return []
    budget = n - 1
    k = int(rng.integers(1, min(max_branch, budget) + 1))
    if k == 1:
        return [budget]
    # Random composition of `budget` into k positive parts.
    bars = rng.choice(budget - 1, size=k - 1, replace=False) + 1
    bars.sort()
    parts = np.diff(np.concatenate(([0], bars, [budget])))
    return [int(p) for p in parts]


def random_tree(
    activities: Sequence[str],
    size: int | None = None,
    max_size: int = 40,
    rng: int | np.random.Generator | None = None,
    max_branch: int = 4,
) -> PlanNode:
    """Generate a random plan tree.

    *size* pins the exact node count; when omitted, the count is uniform in
    ``[1, max_size]`` (the paper's Smax bound).  *activities* is the planner's
    activity set T.
    """
    generator = as_rng(rng)
    if not activities:
        raise PlanError("need at least one activity to build plan trees")
    if size is None:
        size = int(generator.integers(1, max_size + 1))
    if size < 1 or size > max_size:
        raise PlanError(f"requested size {size} outside [1, {max_size}]")

    def build(n: int) -> PlanNode:
        parts = random_shape(n, generator, max_branch)
        if not parts:
            activity = activities[int(generator.integers(len(activities)))]
            return Terminal(activity)
        kind = _KINDS[int(generator.integers(len(_KINDS)))]
        return Controller(kind, tuple(build(p) for p in parts))

    return build(size)
