"""Conversions between plan trees, ASTs and process descriptions.

The paper converts in both directions (Figures 4-7 illustrate the pairs):

* :func:`ast_to_tree` — drop conditions, map Fork->Concurrent,
  Choice->Selective, Iterative->Iterative, Sequence->Sequential.
* :func:`tree_to_ast` — the inverse; selective/iterative nodes get ``true``
  conditions unless a *condition_provider* supplies real ones (the planning
  service wires in goal-derived conditions when emitting a final plan).
* :func:`tree_to_process` / :func:`process_to_tree` — compose the above
  with :mod:`repro.process.structure`.  Because a plan tree may use the same
  end-user activity several times while graph activity names must be
  unique, ``tree_to_process`` renames repeated occurrences ``X, X_2, X_3``
  — all bound to service ``X`` — mirroring the paper's ``P3DR1..P3DR4``
  convention.

Normalization: single-child concurrent/selective/iterative-with-no-loop
semantics degenerate; ``tree_to_ast`` collapses single-child CONCURRENT and
SELECTIVE controllers into their lone child (their semantics coincide with
plain sequencing), and nested SEQUENTIAL controllers flatten.  The
round-trip property therefore holds on *normalized* trees
(:func:`normalize`).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import ConversionError
from repro.plan.tree import (
    Controller,
    ControllerKind,
    PlanNode,
    Terminal,
)
from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    SequenceNode,
    seq,
)
from repro.process.conditions import TRUE, Condition
from repro.process.model import Activity, ActivityKind, ProcessDescription
from repro.process.structure import ast_to_process, process_to_ast

__all__ = [
    "ast_to_tree",
    "tree_to_ast",
    "tree_to_process",
    "process_to_tree",
    "normalize",
]

ConditionProvider = Callable[[Controller], Condition]


def _true_provider(node: Controller) -> Condition:
    return TRUE


def ast_to_tree(ast: Node) -> PlanNode:
    """Map a process-description AST onto a plan tree (conditions dropped)."""
    if isinstance(ast, ActivityNode):
        return Terminal(ast.name)
    if isinstance(ast, SequenceNode):
        return Controller(
            ControllerKind.SEQUENTIAL,
            tuple(ast_to_tree(child) for child in ast.children),
        )
    if isinstance(ast, ForkNode):
        return Controller(
            ControllerKind.CONCURRENT,
            tuple(ast_to_tree(branch) for branch in ast.branches),
        )
    if isinstance(ast, ChoiceNode):
        return Controller(
            ControllerKind.SELECTIVE,
            tuple(ast_to_tree(branch) for _, branch in ast.branches),
        )
    if isinstance(ast, IterativeNode):
        body = ast.body
        # Loop bodies that are sequences become the iterative node's child
        # list, matching Figure 11 where Iterative has children POR,
        # Concurrent, PSF rather than a single Sequential child.
        children = (
            tuple(ast_to_tree(child) for child in body.children)
            if isinstance(body, SequenceNode)
            else (ast_to_tree(body),)
        )
        return Controller(ControllerKind.ITERATIVE, children)
    raise ConversionError(f"cannot convert AST node {type(ast).__name__}")


def tree_to_ast(
    tree: PlanNode,
    condition_provider: ConditionProvider | None = None,
) -> Node:
    """Map a plan tree back onto an AST.

    *condition_provider* is called once per SELECTIVE / ITERATIVE controller
    to obtain the guarding condition (default: ``true``).  For SELECTIVE
    nodes the provided condition guards the first branch; remaining branches
    get ``true`` (default) guards — the planner refines these later.
    """
    provider = condition_provider or _true_provider
    return _to_ast(tree, provider)


def _to_ast(tree: PlanNode, provider: ConditionProvider) -> Node:
    if isinstance(tree, Terminal):
        return ActivityNode(tree.activity)
    assert isinstance(tree, Controller)
    kind = tree.kind
    if kind is ControllerKind.SEQUENTIAL:
        return seq(*(_to_ast(child, provider) for child in tree.children))
    if kind is ControllerKind.CONCURRENT:
        if len(tree.children) == 1:
            return _to_ast(tree.children[0], provider)
        return ForkNode(tuple(_to_ast(child, provider) for child in tree.children))
    if kind is ControllerKind.SELECTIVE:
        if len(tree.children) == 1:
            return _to_ast(tree.children[0], provider)
        first = provider(tree)
        branches = []
        for idx, child in enumerate(tree.children):
            condition = first if idx == 0 else TRUE
            branches.append((condition, _to_ast(child, provider)))
        return ChoiceNode(tuple(branches))
    if kind is ControllerKind.ITERATIVE:
        body = seq(*(_to_ast(child, provider) for child in tree.children))
        return IterativeNode(provider(tree), body)
    raise ConversionError(f"unknown controller kind {kind!r}")


def normalize(tree: PlanNode) -> PlanNode:
    """Canonical form: flatten nested sequentials, collapse trivial nodes.

    * single-child SEQUENTIAL / CONCURRENT / SELECTIVE controllers collapse
      to their child (their execution semantics are identical);
    * a SEQUENTIAL child of a SEQUENTIAL parent splices its children into
      the parent;
    * ITERATIVE nodes keep their children but a SEQUENTIAL single child is
      spliced (Figure-11 convention).

    Normalization never changes the set of execution traces of the plan.
    """
    if isinstance(tree, Terminal):
        return tree
    assert isinstance(tree, Controller)
    children = tuple(normalize(child) for child in tree.children)
    kind = tree.kind
    if kind is ControllerKind.ITERATIVE:
        if len(children) == 1 and (
            isinstance(children[0], Controller)
            and children[0].kind is ControllerKind.SEQUENTIAL
        ):
            children = children[0].children
        return Controller(kind, children)
    if len(children) == 1 and kind in (
        ControllerKind.SEQUENTIAL,
        ControllerKind.CONCURRENT,
        ControllerKind.SELECTIVE,
    ):
        return children[0]
    if kind is ControllerKind.SEQUENTIAL:
        flat: list[PlanNode] = []
        for child in children:
            if isinstance(child, Controller) and child.kind is ControllerKind.SEQUENTIAL:
                flat.extend(child.children)
            else:
                flat.append(child)
        children = tuple(flat)
    return Controller(kind, children)


def tree_to_process(
    tree: PlanNode,
    name: str = "plan",
    library: Mapping[str, Activity] | None = None,
    condition_provider: ConditionProvider | None = None,
) -> ProcessDescription:
    """Elaborate a plan tree all the way to a process-description graph.

    Repeated activity occurrences are renamed ``X, X_2, X_3, ...`` with the
    service field of every occurrence bound to the original name.
    """
    counts: dict[str, int] = {}
    base_lib = dict(library or {})

    def rename(node: PlanNode) -> PlanNode:
        if isinstance(node, Terminal):
            n = counts.get(node.activity, 0) + 1
            counts[node.activity] = n
            if n == 1:
                return node
            return Terminal(f"{node.activity}_{n}")
        assert isinstance(node, Controller)
        return Controller(node.kind, tuple(rename(c) for c in node.children))

    renamed = rename(tree)

    def factory(name_: str) -> Activity:
        base, _, suffix = name_.rpartition("_")
        original = base if suffix.isdigit() and base else name_
        template = base_lib.get(original)
        if template is not None:
            return Activity(
                name_,
                ActivityKind.END_USER,
                template.service or original,
                template.inputs,
                template.outputs,
                template.constraint,
            )
        return Activity(name_, ActivityKind.END_USER, original)

    ast = tree_to_ast(normalize(renamed), condition_provider)
    return ast_to_process(ast, name=name, library=factory)


def process_to_tree(pd: ProcessDescription) -> PlanNode:
    """Recover the plan tree of a well-structured process description."""
    return ast_to_tree(process_to_ast(pd))
