"""repro — reproduction of "Metainformation and Workflow Management for
Solving Complex Problems in Grid Environments" (IPDPS 2004).

Subpackages:

* :mod:`repro.ontology` — frame-based metainformation (Figures 12-13)
* :mod:`repro.process` — the ATN process-description language (Section 2)
* :mod:`repro.plan` — plan trees (Section 3.4.1)
* :mod:`repro.planner` — the GP planner and baselines (Section 3.4)
* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.grid` — simulated grid substrate (nodes, network, containers)
* :mod:`repro.services` — the Figure-1 core services
* :mod:`repro.virolab` — the 3D virus-reconstruction case study (Section 4)
* :mod:`repro.workloads` — synthetic planning-problem generators
* :mod:`repro.experiments` — table/figure reproduction harness
"""

__version__ = "1.0.0"
