#!/usr/bin/env python
"""The Section-4 case study end to end: 3D virus reconstruction on a grid.

Stages a synthetic cryo-EM dataset in the persistent-storage service,
submits the Figure-10 process description to the coordination service, and
watches the abstract ATN machine drive POD -> P3DR -> (POR || P3DR x3 ->
PSF)* across heterogeneous application containers until Cons1 declares the
resolution goal met.

Run: ``python examples/virus_reconstruction.py``
"""

import numpy as np

from repro.virolab import (
    angular_distance,
    planning_problem,
    process_description,
    psf,
    setup_virolab_case,
    virolab_grid,
)


def main() -> None:
    env, core, fleet = virolab_grid(containers=3)
    case = setup_virolab_case(core.storage, size=24, count=40, seed=0)
    print("staged case: 40 synthetic micrographs of a hidden phantom, "
          "initial model, program parameter files (D1..D7)")

    pd = process_description()
    print(f"process description {pd.name}: "
          f"{len(pd.end_user_activities())} end-user activities, "
          f"{len(pd.transitions)} transitions\n")

    outcome = {}

    def submit():
        reply = yield from core.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": pd,
                "initial_data": case["initial_data"],
                "payload_keys": case["payload_keys"],
                "work": case["work"],
                "problem": planning_problem(),
                "task": "3DSD",
            },
        )
        outcome.update(reply)

    env.engine.spawn(submit(), "user")
    env.run(max_events=5_000_000)

    print("enactment log:")
    for time, kind, detail in outcome["events"]:
        if kind in ("activity", "choice", "loop-done", "completed"):
            print(f"  t={time:8.2f}s  {kind:10s} {detail}")

    d12 = outcome["data"]["D12"]
    print(f"\nfinal resolution: {d12['Value']:.2f} A "
          f"(goal: <= {case['goal_resolution']} A, per Cons1)")

    # Score the reconstruction against the hidden ground truth.
    model = core.storage.get(outcome["payload_keys"]["D9"])
    orientations = core.storage.get(outcome["payload_keys"]["D8"])
    truth_res = psf(model, case["phantom"])["resolution"]
    errors = [
        np.degrees(angular_distance(a, b))
        for a, b in zip(orientations, case["dataset"].true_rotations)
    ]
    print(f"model vs hidden truth: {truth_res:.1f} A; "
          f"median orientation error {np.median(errors):.1f} deg")
    print(f"\nsimulated makespan {env.engine.now:.1f}s, "
          f"{env.trace.total_recorded} messages, "
          f"{len(core.storage)} stored objects")


if __name__ == "__main__":
    main()
