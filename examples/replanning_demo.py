#!/usr/bin/env python
"""Re-planning under failure: the Figure-3 protocol in action.

Builds a grid whose application containers fail often, submits the case
study, and shows the coordination service detecting a dead activity,
triggering the planning service's re-planning flow (information ->
brokerage -> container probes), and finishing the case on a repaired plan.

Run: ``python examples/replanning_demo.py``
"""

from repro.errors import ServiceError
from repro.grid import EndUserService
from repro.planner import GPConfig
from repro.services import standard_environment
from repro.virolab import activity_specs, planning_problem, process_description


def synthetic_services():
    """Case-study services with symbolic effects; PSF's resolution value
    improves each call so the Cons1 loop terminates."""
    values = iter([12.0, 9.5, 7.5] + [7.0] * 50)

    def psf_compute(props, payloads):
        return (
            {"D12": {"Classification": "Resolution File", "Value": next(values)}},
            {},
        )

    out = {}
    for name, spec in activity_specs().items():
        if spec.service == "PSF":
            continue
        out.setdefault(
            spec.service or name,
            EndUserService(spec.service or name, work=10.0, effects=spec.effects),
        )
    out["PSF"] = EndUserService("PSF", work=10.0, compute=psf_compute)
    return list(out.values())


def main() -> None:
    for seed in range(10):
        env, core, fleet = standard_environment(
            synthetic_services(),
            containers=3,
            failure_probability=0.45,
            failure_seed=seed,
            planner_config=GPConfig(population_size=40, generations=6),
            planner_seed=seed,
        )
        outcome = {}

        def submit():
            try:
                reply = yield from core.coordination.call(
                    "coordination",
                    "execute-task",
                    {
                        "process": process_description(),
                        "initial_data": {
                            d: {"Classification": c}
                            for d, c in {
                                "D1": "POD-Parameter", "D2": "P3DR-Parameter",
                                "D3": "P3DR-Parameter", "D4": "P3DR-Parameter",
                                "D5": "POR-Parameter", "D6": "PSF-Parameter",
                                "D7": "2D Image",
                            }.items()
                        },
                        "problem": planning_problem(),
                        "task": f"failure-case-{seed}",
                    },
                )
                outcome.update(reply)
            except ServiceError as exc:
                outcome["error"] = str(exc)

        env.engine.spawn(submit(), "user")
        env.run(max_events=5_000_000)

        if outcome.get("replans", 0) > 0 and "error" not in outcome:
            print(f"seed {seed}: completed after "
                  f"{outcome['replans']} re-planning round(s)\n")
            print("coordination event log (failures and repairs):")
            for time, kind, detail in outcome["events"]:
                if kind in ("retry", "activity-failed", "replan",
                            "enact", "completed"):
                    print(f"  t={time:8.2f}s  {kind:16s} {detail}")
            replan_messages = [
                (t[0], t[1], t[3])
                for t in env.trace.actions()
                if ("planning" in (t[0], t[1]))
                and t[3] in ("replan", "lookup", "find-containers", "can-execute")
            ]
            print(f"\nFigure-3 protocol messages ({len(replan_messages)}):")
            for src, dst, action in replan_messages[:12]:
                print(f"  {src:14s} -> {dst:14s} {action}")
            if len(replan_messages) > 12:
                print(f"  ... and {len(replan_messages) - 12} more")
            break
        status = "completed without re-planning" if "error" not in outcome else "failed"
        print(f"seed {seed}: {status}; trying another failure pattern...")
    else:
        print("no seed triggered a successful re-planning run")


if __name__ == "__main__":
    main()
