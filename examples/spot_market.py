#!/usr/bin/env python
"""The spot market: deadlines, costs and advance reservations (Section 1).

Section 1 paints a non-cooperative resource market: soft deadlines,
brokered acquisition, reservations that may be unsupported or priced
prohibitively.  This example drives the scheduling service through all
three regimes on a heterogeneous fleet (slow-and-cheap through
fast-and-expensive nodes).

Run: ``python examples/spot_market.py``
"""

from repro.errors import ServiceError
from repro.grid import EndUserService
from repro.planner import GPConfig
from repro.services import standard_environment


def main() -> None:
    env, core, fleet = standard_environment(
        [EndUserService("RENDER", work=100.0, effects={"OUT": {"Status": "done"}})],
        containers=3,
        speeds=(1.0, 2.0, 4.0),
        cost_rates=(1.0, 2.5, 6.0),
        reservable=True,
        planner_config=GPConfig(population_size=20, generations=3),
    )
    user = core.coordination
    candidates = [ac.name for ac in fleet]
    log = []

    def shop():
        # 1. Fastest turnaround, price no object.
        fast = yield from user.call(
            "scheduling",
            "schedule",
            {"service": "RENDER", "candidates": candidates, "work": 100.0},
        )
        log.append(("fastest", fast))

        # 2. Cheapest that still meets a soft 60-second deadline.
        frugal = yield from user.call(
            "scheduling",
            "schedule",
            {"service": "RENDER", "candidates": candidates, "work": 100.0,
             "deadline": 60.0, "objective": "cost"},
        )
        log.append(("cheapest within 60s", frugal))

        # 3. An impossible deadline: the market says no.
        try:
            yield from user.call(
                "scheduling",
                "schedule",
                {"service": "RENDER", "candidates": candidates, "work": 100.0,
                 "deadline": 5.0},
            )
        except ServiceError as exc:
            log.append(("impossible 5s deadline", {"error": str(exc)}))

        # 4. Reserve capacity in advance — note the cost premium.
        quote = yield from user.call(
            "scheduling",
            "quote-reservation",
            {"container": fast["container"], "duration": 100.0},
        )
        booking = yield from user.call(
            "scheduling",
            "reserve",
            {"container": fast["container"], "start": env.engine.now + 10.0,
             "duration": 100.0},
        )
        log.append(("reservation", {"quote": quote, "booking": booking}))

    env.engine.spawn(shop(), "shopper")
    env.run(max_events=100_000)

    for label, outcome in log:
        print(f"== {label}")
        for key, value in outcome.items():
            print(f"   {key}: {value}")
        print()

    spot = log[0][1]
    reserved = log[3][1]
    premium = reserved["booking"]["cost"] / (spot["estimate"] * 6.0)
    print(f"advance reservation premium over spot price: {premium:.2f}x")


if __name__ == "__main__":
    main()
