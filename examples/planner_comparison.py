#!/usr/bin/env python
"""GP planner vs baselines across problem families (ablation A4, hands on).

Pits the Section-3.4 GP planner against random search, hill climbing and a
classical forward state-space planner at matched evaluation budgets on the
case-study problem plus synthetic families.

Run: ``python examples/planner_comparison.py``
"""

import numpy as np

from repro.planner import (
    GPConfig,
    GPPlanner,
    PlanEvaluator,
    forward_search,
    hill_climb,
    random_search,
)
from repro.virolab import planning_problem
from repro.workloads import chain_problem, diamond_problem, distractor_problem

CFG = GPConfig(population_size=60, generations=10)
SEEDS = range(3)


def main() -> None:
    problems = [
        planning_problem(),
        chain_problem(6),
        diamond_problem(4),
        distractor_problem(4, 8),
    ]
    header = f"{'problem':18s} {'planner':16s} {'solve':>6s} {'fitness':>8s} {'size':>5s} {'budget':>7s}"
    print(header)
    print("-" * len(header))
    for problem in problems:
        gp_runs = [GPPlanner(CFG, rng=s).plan(problem) for s in SEEDS]
        budget = int(np.mean([r.evaluations for r in gp_runs]))
        rows = [
            (
                "GP (paper)",
                np.mean([r.solved for r in gp_runs]),
                np.mean([r.best_fitness.overall for r in gp_runs]),
                np.mean([r.best_plan.size for r in gp_runs]),
                budget,
            )
        ]
        for label, runner in (("random search", random_search),
                              ("hill climbing", hill_climb)):
            runs = [
                runner(problem, PlanEvaluator(problem, CFG.weights, CFG.smax),
                       budget, rng=s)
                for s in SEEDS
            ]
            rows.append(
                (
                    label,
                    np.mean([r.solved for r in runs]),
                    np.mean([r.best_fitness.overall for r in runs]),
                    np.mean([r.best_plan.size for r in runs]),
                    budget,
                )
            )
        fwd = forward_search(problem, PlanEvaluator(problem, CFG.weights, CFG.smax))
        rows.append(
            ("forward search", float(fwd.solved), fwd.best_fitness.overall,
             fwd.best_plan.size, fwd.evaluations)
        )
        for label, solve, fitness, size, used in rows:
            print(f"{problem.name:18s} {label:16s} {solve:6.2f} "
                  f"{fitness:8.3f} {size:5.1f} {used:7d}")
        print()


if __name__ == "__main__":
    main()
