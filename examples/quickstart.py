#!/usr/bin/env python
"""Quickstart: the library in five minutes.

1. Write a workflow in the paper's process-description language.
2. Convert it between representations (text, ATN graph, plan tree).
3. Define a planning problem and let the GP planner find a plan.
4. Enact the plan on a simulated grid.

Run: ``python examples/quickstart.py``
"""

from repro.plan import pretty, process_to_tree
from repro.planner import ActivitySpec, GPConfig, GPPlanner, PlanningProblem
from repro.process import (
    ast_to_process,
    parse_condition,
    parse_process,
    unparse,
    validate_process,
)


def main() -> None:
    # ---------------------------------------------------------------- 1.
    text = """
    BEGIN;
      fetch;                               # download the input data set
      {FORK {clean} {profile} JOIN};       # two independent passes
      {ITERATIVE {COND report.Quality < 3} # refine until good enough
        {train; evaluate; report_step}};
    END
    """
    ast = parse_process(text)
    print("parsed:", unparse(ast))

    # ---------------------------------------------------------------- 2.
    pd = ast_to_process(ast, name="quickstart")
    validate_process(pd)
    print(f"\ngraph: {len(pd.end_user_activities())} end-user + "
          f"{len(pd.flow_control_activities())} flow-control activities, "
          f"{len(pd.transitions)} transitions")
    tree = process_to_tree(pd)
    print("\nplan tree:")
    print(pretty(tree))

    # ---------------------------------------------------------------- 3.
    # P = {Sinit, G, T}: initial data, goal specifications, activity set.
    ready = lambda name: parse_condition(f'{name}.Status = "ready"')  # noqa: E731
    problem = PlanningProblem.build(
        "quickstart",
        initial={"raw": {"Status": "ready"}},
        goals=(ready("report"),),
        activities=[
            ActivitySpec("fetch", precondition=ready("raw"),
                         effects={"dataset": {"Status": "ready"}}),
            ActivitySpec("clean", precondition=ready("dataset"),
                         effects={"clean_data": {"Status": "ready"}}),
            ActivitySpec("train", precondition=ready("clean_data"),
                         effects={"model": {"Status": "ready"}}),
            ActivitySpec("evaluate", precondition=ready("model"),
                         effects={"metrics": {"Status": "ready"}}),
            ActivitySpec("report_step", precondition=ready("metrics"),
                         effects={"report": {"Status": "ready"}}),
        ],
    )
    planner = GPPlanner(GPConfig(population_size=100, generations=10), rng=0)
    result = planner.plan(problem)
    print(f"\nGP planner: fitness={result.best_fitness.overall:.3f} "
          f"(validity={result.best_fitness.validity:.2f}, "
          f"goal={result.best_fitness.goal:.2f}, "
          f"size={result.best_plan.size})")
    print(pretty(result.best_plan))

    # ---------------------------------------------------------------- 4.
    from repro.grid import EndUserService
    from repro.services import standard_environment

    services = [
        EndUserService(spec.name, work=5.0, effects=spec.effects)
        for spec in problem.activities.values()
    ]
    env, core, fleet = standard_environment(services, containers=2)
    outcome = {}

    def run():
        reply = yield from core.coordination.call(
            "coordination",
            "execute-task",
            {"problem": problem, "initial_data": {"raw": {"Status": "ready"}},
             "task": "quickstart"},
        )
        outcome.update(reply)

    env.engine.spawn(run(), "user")
    env.run(max_events=2_000_000)
    print(f"\nenactment: {outcome['status']} after "
          f"{outcome['activities_run']} activity executions "
          f"({env.engine.now:.1f} simulated seconds, "
          f"{env.trace.total_recorded} messages)")


if __name__ == "__main__":
    main()
