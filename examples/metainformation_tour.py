#!/usr/bin/env python
"""A tour of the metainformation layer (Figures 12-13).

Builds the Figure-12 ontology shell, populates it with the Figure-13
instances, serializes it through the ontology service, and runs the
brokerage-style queries (equivalence classes, slot-path constraints) the
paper's Section 1 motivates.

Run: ``python examples/metainformation_tour.py``
"""

from repro.grid import GridEnvironment, HardwareProfile
from repro.ontology import (
    RESOURCE,
    Op,
    Query,
    builtin_shell,
    equivalence_classes,
    kb_from_dict,
    kb_to_json,
)
from repro.services import build_core_services
from repro.virolab import case_study_kb


def main() -> None:
    # ------------------------------------------------ the Figure-12 shell
    shell = builtin_shell()
    print("Figure-12 ontology shell:")
    for cls in shell.class_names:
        print(f"  {cls:20s} {len(shell.slots_of(cls)):2d} slots")

    # ------------------------------------------- the Figure-13 instances
    kb = case_study_kb()
    print(f"\nFigure-13 instances: {len(kb)} total")
    task = kb.find_one("Task", Name="3DSD")
    pd = kb.resolve(task, "Process Description")
    cd = kb.resolve(task, "Case Description")
    print(f"  task {task.get('ID')} owner={task.get('Owner')}")
    print(f"  process {pd.get('Name')}: "
          f"{len(kb.resolve(pd, 'Activity Set'))} activities, "
          f"{len(kb.resolve(pd, 'Transition Set'))} transitions")
    print(f"  case {cd.get('Name')}: initial data "
          f"{[d.id for d in kb.resolve(cd, 'Initial Data Set')]}")

    # ------------------------------------------------- resource queries
    env = GridEnvironment()
    services = build_core_services(env)
    broker_kb = services.brokerage.resource_kb
    for name, site, speed, domain in (
        ("pc-cluster", "ucf", 1.0, "ucf"),
        ("beowulf", "ucf", 1.0, "ucf"),
        ("sp2", "purdue", 4.0, "purdue"),
        ("origin", "ncsa", 4.0, "ncsa"),
    ):
        node = env.add_node(name, site, HardwareProfile(speed=speed), domain=domain)
        services.brokerage.advertise_node(node)

    fast = Query(RESOURCE).where("Hardware/Speed", Op.GE, 2.0).run(broker_kb)
    print(f"\nresources with Speed >= 2.0: "
          f"{sorted(r.get('Name') for r in fast)}")

    groups = equivalence_classes(
        broker_kb,
        broker_kb.instances_of(RESOURCE),
        ["Hardware/Speed"],
    )
    print("equivalence classes by Hardware/Speed:")
    for key, members in sorted(groups.items(), key=lambda kv: repr(kv[0])):
        print(f"  speed={key[0]}: {sorted(m.get('Name') for m in members)}")

    # --------------------------------------- shells over the wire (JSON)
    wire = kb_to_json(kb.shell())
    restored = kb_from_dict(__import__("json").loads(wire))
    print(f"\nontology shell serializes to {len(wire)} bytes of JSON and "
          f"round-trips ({len(restored.class_names)} classes)")


if __name__ == "__main__":
    main()
