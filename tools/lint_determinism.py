#!/usr/bin/env python
"""Determinism lint: AST checks over the simulation-facing packages.

The reproduction's core property is that runs are deterministic — same
seeds, same traces, byte-identical telemetry.  Three habits quietly break
that, and this checker bans them from all of ``src/repro``:

* ``DET001`` — wall-clock reads (``time.time()``, ``datetime.now()``,
  ``datetime.utcnow()``, ``datetime.today()``): simulated components must
  take time from the simulation engine, never the host clock.
  (``time.perf_counter`` is allowed: it only ever feeds *telemetry about*
  a run — wall-cost span attributes — not the run itself.)
* ``DET002`` — the process-global ``random`` module: all randomness flows
  through seeded ``numpy.random.Generator`` instances passed explicitly,
  so two runs with the same seed share every draw.
* ``DET003`` — iterating a set literal / ``set(...)`` call / set
  comprehension in a ``for`` statement or comprehension: set iteration
  order is salted per interpreter run, so any scheduling or messaging
  decision derived from it diverges between runs.  Iterate a ``sorted()``
  view or a list/dict instead.

A line ending in a ``# det: ok`` comment is exempt (for the rare case
that has a real reason, e.g. hashing wall time into a log file name).

Usage: ``python tools/lint_determinism.py [paths...]`` — the default
path is the whole ``src/repro`` tree.  Exit 1 when violations are found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ("src/repro",)

ALLOW_MARKER = "# det: ok"

#: Attribute calls read off the host clock: (object chain, attribute).
_CLOCK_CALLS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("datetime.datetime", "now"),
    ("datetime.datetime", "utcnow"),
    ("datetime.datetime", "today"),
}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.violations: list[tuple[Path, int, str, str]] = []

    def _allowed(self, lineno: int) -> bool:
        line = self.lines[lineno - 1] if lineno - 1 < len(self.lines) else ""
        return ALLOW_MARKER in line

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if not self._allowed(node.lineno):
            self.violations.append((self.path, node.lineno, code, message))

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            chain = _dotted(node.func.value)
            if chain is not None and (chain, node.func.attr) in _CLOCK_CALLS:
                self._report(
                    node, "DET001",
                    f"wall-clock read {chain}.{node.func.attr}() — simulated "
                    f"code takes time from the engine",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "random":
            self._report(
                node, "DET002",
                f"global random.{node.attr} — use a seeded "
                f"numpy.random.Generator passed explicitly",
            )
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node):
            self._report(
                iter_node, "DET003",
                "iteration over a set — order is salted per run; iterate "
                "sorted(...) or a list instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._check_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)


def check_file(path: Path) -> list[tuple[Path, int, str, str]]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    checker = _Checker(path, source.splitlines())
    checker.visit(tree)
    return checker.violations


def main(argv: list[str] | None = None) -> int:
    paths = [Path(p) for p in (argv if argv else DEFAULT_PATHS)]
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[tuple[Path, int, str, str]] = []
    for file in files:
        violations.extend(check_file(file))
    for path, lineno, code, message in violations:
        print(f"{path}:{lineno}: {code} {message}")
    if violations:
        print(f"{len(violations)} determinism violation(s)")
        return 1
    print(f"determinism lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
