#!/usr/bin/env python
"""Corpus completeness gate: every finding code has a corpus witness.

The analyzer's finding vocabulary lives in
:mod:`repro.analysis.findings` (``FINDING_CODES``); the defect corpus
under ``tests/analysis/corpus/`` holds one minimal fixture per code
whose ``expect`` list pins the complete finding set.  This gate keeps
the two in lock-step:

* a code registered in ``FINDING_CODES`` with **no** corpus witness
  fails (new detections must ship a minimal demonstrating process);
* an ``expect`` entry naming a code **not** in ``FINDING_CODES`` fails
  (stale fixtures after a vocabulary change).

It reads only the fixtures' ``expect`` metadata — the semantic check
that each fixture actually *produces* those findings stays in
``tests/analysis/test_corpus.py``; this script is the cheap CI
tripwire that runs without pytest.

Usage: ``python tools/check_corpus.py``.  Exit 1 on any gap.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CORPUS = REPO / "tests" / "analysis" / "corpus"


def expected_codes() -> dict[str, list[str]]:
    """Map of finding code -> corpus fixtures that declare it."""
    witnesses: dict[str, list[str]] = {}
    for path in sorted(CORPUS.glob("*.json")):
        doc = json.loads(path.read_text())
        for entry in doc.get("expect") or ():
            witnesses.setdefault(entry["code"], []).append(path.name)
    return witnesses


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.analysis import FINDING_CODES

    witnesses = expected_codes()
    missing = sorted(set(FINDING_CODES) - set(witnesses))
    unknown = sorted(set(witnesses) - set(FINDING_CODES))
    for code in missing:
        title, _ = FINDING_CODES[code]
        print(f"no corpus witness for {code} ({title}) — add a minimal "
              f"fixture under {CORPUS.relative_to(REPO)}/")
    for code in unknown:
        print(f"corpus expects unregistered code {code} "
              f"(in {', '.join(witnesses[code])})")
    if missing or unknown:
        print(f"corpus gate: {len(missing)} missing, {len(unknown)} unknown")
        return 1
    print(
        f"corpus gate: {len(FINDING_CODES)} finding codes, "
        f"all witnessed ({sum(len(v) for v in witnesses.values())} "
        f"expectations across {len(list(CORPUS.glob('*.json')))} fixtures)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
