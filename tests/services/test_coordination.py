"""Coordination service: the abstract ATN machine."""

import pytest

from repro.errors import ServiceError
from repro.virolab import planning_problem, process_description
from tests.services.conftest import drive

INITIAL = {
    "D1": {"Classification": "POD-Parameter"},
    "D2": {"Classification": "P3DR-Parameter"},
    "D3": {"Classification": "P3DR-Parameter"},
    "D4": {"Classification": "P3DR-Parameter"},
    "D5": {"Classification": "POR-Parameter"},
    "D6": {"Classification": "PSF-Parameter"},
    "D7": {"Classification": "2D Image"},
}


def execute(grid, **overrides):
    env, services, fleet = grid
    user = services.coordination
    request = {
        "process": process_description(),
        "initial_data": dict(INITIAL),
        "task": "3DSD",
    }
    request.update(overrides)
    return drive(
        env, user, lambda: user.call("coordination", "execute-task", request)
    ), env, services


def test_full_enactment_completes(grid):
    result, env, services = execute(grid)
    assert result["status"] == "completed"
    # Cons1 with PSF values 12, 9.5, 7.5 -> 3 loop iterations:
    # POD + P3DR1 + 3*(POR + 3*P3DR + PSF) = 17 activities.
    assert result["activities_run"] == 17
    assert result["data"]["D12"]["Value"] == 7.5
    assert result["replans"] == 0


def test_loop_terminates_by_cons1(grid):
    result, env, services = execute(grid)
    record = services.coordination.records[0]
    loop_events = [d for t, k, d in record.events if k == "loop-done"]
    assert loop_events == ["3 iterations"]


def test_fork_branches_run_concurrently(grid):
    result, env, services = execute(grid)
    record = services.coordination.records[0]
    p3dr_times = [
        t for t, k, d in record.events
        if k == "activity" and d.startswith(("P3DR2", "P3DR3", "P3DR4"))
    ]
    # In each loop pass the three stream reconstructions finish together
    # (same work, concurrent execution on 4-slot nodes).
    assert len(p3dr_times) == 9
    first_pass = p3dr_times[:3]
    assert max(first_pass) - min(first_pass) < 1.0


def test_data_flow_reaches_outputs(grid):
    result, env, services = execute(grid)
    for name in ("D8", "D9", "D10", "D11", "D12"):
        assert name in result["data"], name
    assert result["data"]["D8"]["Classification"] == "Orientation File"


def test_scheduler_prefers_fast_container(grid):
    result, env, services = execute(grid)
    record = services.coordination.records[0]
    containers = {
        d.rsplit(" on ", 1)[1]
        for t, k, d in record.events
        if k == "activity"
    }
    # ac3 (speed 4) should get essentially everything while idle.
    assert "ac3" in containers


def test_performance_reported_to_broker(grid):
    result, env, services = execute(grid)
    perf = services.brokerage.performance_of("PSF", "ac3")
    assert perf is not None and perf.successes >= 1


def test_failure_without_problem_gives_up(grid):
    env, services, fleet = grid
    for ac in fleet:
        ac.crash()
    user = services.coordination
    with pytest.raises(ServiceError):
        drive(
            env,
            user,
            lambda: user.call(
                "coordination",
                "execute-task",
                {
                    "process": process_description(),
                    "initial_data": dict(INITIAL),
                },
            ),
        )


def test_plans_when_no_process_supplied(grid):
    """The Figure-2 path: a task arrives with Need Planning and no process
    description; coordination asks planning first, then enacts."""
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {
                "problem": planning_problem(),
                "initial_data": dict(INITIAL),
                "task": "planned-3DSD",
            },
        ),
        max_events=5_000_000,
    )
    assert result["status"] == "completed"
    assert result["data"]["D12"]["Classification"] == "Resolution File"
    assert services.planning.plans_created == 1


def test_unstructured_process_rejected(grid):
    env, services, fleet = grid
    from repro.process import ActivityKind, ProcessDescription

    # A Fork whose branches converge on two different Joins cannot be
    # recovered into the Section-2 language.
    bad = ProcessDescription("bad")
    bad.add("BEGIN", ActivityKind.BEGIN)
    bad.add("END", ActivityKind.END)
    bad.add("F", ActivityKind.FORK)
    for name in ("A", "B", "C", "D"):
        bad.add(name)
    bad.add("J1", ActivityKind.JOIN)
    bad.add("J2", ActivityKind.JOIN)
    bad.connect("BEGIN", "F")
    bad.connect("F", "A")
    bad.connect("F", "B")
    bad.connect("A", "J1")
    bad.connect("B", "J2")
    bad.connect("C", "J1")
    bad.connect("D", "J2")
    bad.connect("J1", "END")
    user = services.coordination
    with pytest.raises(ServiceError):
        drive(
            env,
            user,
            lambda: user.call(
                "coordination",
                "execute-task",
                {"process": bad, "initial_data": dict(INITIAL)},
            ),
        )


def test_events_logged_in_order(grid):
    result, env, services = execute(grid)
    times = [t for t, k, d in result["events"]]
    assert times == sorted(times)
    kinds = [k for t, k, d in result["events"]]
    assert kinds[0] == "enact"
    assert kinds[-1] == "completed"


def test_loop_bound_guards_nonterminating_conditions(grid):
    """An always-true iterative condition is cut off at max_loop_iterations."""
    env, services, fleet = grid
    from repro.process import TRUE, WorkflowBuilder

    pd = (
        WorkflowBuilder("spinner")
        .loop(TRUE, lambda b: b.activity("POD"))
        .build()
    )
    services.coordination.max_loop_iterations = 4
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {"process": pd, "initial_data": dict(INITIAL), "task": "spin"},
        ),
    )
    assert result["status"] == "completed"
    assert result["activities_run"] == 4
    bounds = [e for e in result["events"] if e[1] == "loop-bound"]
    assert len(bounds) == 1


def test_choice_default_branch_when_no_condition_holds(grid):
    """No condition true -> the last branch acts as the default arm."""
    env, services, fleet = grid
    from repro.process import WorkflowBuilder, parse_condition

    never = parse_condition('D1.Classification = "nope"')
    pd = (
        WorkflowBuilder("chooser")
        .choice(
            (never, lambda b: b.activity("POR")),
            (never, lambda b: b.activity("POD")),
        )
        .build()
    )
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {"process": pd, "initial_data": dict(INITIAL), "task": "choose"},
        ),
    )
    assert result["status"] == "completed"
    record = services.coordination.records[-1]
    defaults = [e for e in record.events if e[1] == "choice-default"]
    assert len(defaults) == 1
    # The default (last) branch ran POD, not POR.
    activities = [e[2] for e in record.events if e[1] == "activity"]
    assert any(a.startswith("POD") for a in activities)
    assert not any(a.startswith("POR") for a in activities)


def test_intake_refuses_semantically_broken_process(grid):
    """Error findings (here E201) refuse the case before any enactment."""
    env, services, fleet = grid
    from repro.process import WorkflowBuilder, parse_condition

    dead = parse_condition("D1.Value > 8 and D1.Value < 3")
    pd = (
        WorkflowBuilder("doomed")
        .choice(
            (dead, lambda b: b.activity("POR")),
            (None, lambda b: b.activity("POD")),
        )
        .build()
    )
    user = services.coordination
    with pytest.raises(ServiceError) as err:
        drive(
            env,
            user,
            lambda: user.call(
                "coordination",
                "execute-task",
                {"process": pd, "initial_data": dict(INITIAL), "task": "bad"},
            ),
        )
    message = str(err.value)
    assert "failed semantic analysis" in message and "E201" in message
    assert services.coordination.records == []  # refused at intake
    assert services.coordination.metrics.total("cases_refused") == 1


def test_intake_tolerates_overlapping_guards_but_reports_them(grid):
    """E202 is tolerated (first-match resolves it) yet still surfaced in
    the reply and the enactment record."""
    env, services, fleet = grid
    from repro.process import WorkflowBuilder, parse_condition

    never = parse_condition('D1.Classification = "nope"')
    pd = (
        WorkflowBuilder("dup-guards")
        .choice(
            (never, lambda b: b.activity("POR")),
            (never, lambda b: b.activity("POD")),
        )
        .build()
    )
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {"process": pd, "initial_data": dict(INITIAL), "task": "dup"},
        ),
    )
    assert result["status"] == "completed"
    assert [f["code"] for f in result["findings"]] == ["E202"]
    record = services.coordination.records[-1]
    lint_events = [d for t, k, d in record.events if k == "lint"]
    assert len(lint_events) == 1 and lint_events[0].startswith("E202")


def test_intake_clean_case_reply_has_no_findings_key(grid):
    result, env, services = execute(grid)
    assert "findings" not in result
