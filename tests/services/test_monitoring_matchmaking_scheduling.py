"""Monitoring, matchmaking and scheduling services."""

import pytest

from repro.errors import ServiceError
from tests.services.conftest import drive


class TestMonitoring:
    def test_container_status(self, grid):
        env, services, fleet = grid
        user = services.coordination
        status = drive(env, user, lambda: user.call("monitoring", "status", {"agent": "ac3"}))
        assert status["known"] and status["alive"]
        assert status["node"] == "node3"
        assert status["speed"] == 4.0
        assert status["node_up"] is True

    def test_unknown_agent(self, grid):
        env, services, fleet = grid
        user = services.coordination
        status = drive(env, user, lambda: user.call("monitoring", "status", {"agent": "zz"}))
        assert status == {"known": False, "alive": False}

    def test_crash_visible(self, grid):
        env, services, fleet = grid
        fleet[0].crash()
        user = services.coordination
        status = drive(env, user, lambda: user.call("monitoring", "status", {"agent": "ac1"}))
        assert status["alive"] is False

    def test_node_status(self, grid):
        env, services, fleet = grid
        user = services.coordination
        status = drive(env, user, lambda: user.call("monitoring", "node-status", {"node": "node2"}))
        assert status["up"] and status["slots"] == 4

    def test_census(self, grid):
        env, services, fleet = grid
        user = services.coordination
        census = drive(env, user, lambda: user.call("monitoring", "census", {}))
        assert census["agents"] == 11 + 3
        assert census["nodes"] == 3


class TestMatchmaking:
    def test_match_ranks_by_load_then_speed(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(env, user, lambda: user.call("matchmaking", "match", {"service": "POD"}))
        # all idle -> fastest first
        assert [c["container"] for c in result["candidates"]] == ["ac3", "ac2", "ac1"]

    def test_min_speed_filter(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call("matchmaking", "match", {"service": "POD", "min_speed": 3.0}),
        )
        assert [c["container"] for c in result["candidates"]] == ["ac3"]

    def test_site_filter(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call("matchmaking", "match", {"service": "POD", "site": "siteB"}),
        )
        assert [c["container"] for c in result["candidates"]] == ["ac2"]

    def test_dead_containers_excluded(self, grid):
        env, services, fleet = grid
        fleet[2].crash()
        user = services.coordination
        result = drive(env, user, lambda: user.call("matchmaking", "match", {"service": "POD"}))
        assert "ac3" not in [c["container"] for c in result["candidates"]]

    def test_unknown_service_empty(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(env, user, lambda: user.call("matchmaking", "match", {"service": "NOPE"}))
        assert result["candidates"] == []


class TestScheduling:
    def test_prefers_fast_idle_container(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call(
                "scheduling",
                "schedule",
                {"service": "POD", "candidates": ["ac1", "ac2", "ac3"], "work": 10.0},
            ),
        )
        assert result["container"] == "ac3"
        assert result["estimate"] == pytest.approx(10.0 / 4.0)
        assert result["alternatives"] == ["ac2", "ac1"]

    def test_reliability_penalty(self, grid):
        env, services, fleet = grid
        user = services.coordination
        # Make ac3 look unreliable: estimate doubles, ac2 wins (2.5*2 = 5 = work/2).
        for _ in range(10):
            services.brokerage.record("POD", "ac3", 0.0, success=False)
        result = drive(
            env,
            user,
            lambda: user.call(
                "scheduling",
                "schedule",
                {"service": "POD", "candidates": ["ac2", "ac3"], "work": 10.0},
            ),
        )
        assert result["container"] == "ac2"

    def test_no_candidates_rejected(self, grid):
        env, services, fleet = grid
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(
                env,
                user,
                lambda: user.call(
                    "scheduling", "schedule", {"service": "POD", "candidates": []}
                ),
            )

    def test_all_dead_rejected(self, grid):
        env, services, fleet = grid
        for ac in fleet:
            ac.crash()
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(
                env,
                user,
                lambda: user.call(
                    "scheduling",
                    "schedule",
                    {"service": "POD", "candidates": ["ac1", "ac2", "ac3"]},
                ),
            )
