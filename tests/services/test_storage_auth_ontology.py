"""Persistent storage, authentication and ontology services."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ontology import builtin_shell, kb_from_dict
from tests.services.conftest import drive


class TestStorage:
    def test_store_retrieve_roundtrip(self, grid):
        env, services, fleet = grid
        user = services.coordination
        payload = np.arange(10)
        drive(env, user, lambda: user.call("storage", "store", {"key": "k1", "payload": payload}))
        result = drive(env, user, lambda: user.call("storage", "retrieve", {"key": "k1"}))
        assert np.array_equal(result["payload"], payload)
        assert result["meta"]["owner"] == "coordination"

    def test_retrieve_missing_fails(self, grid):
        env, services, fleet = grid
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(env, user, lambda: user.call("storage", "retrieve", {"key": "ghost"}))

    def test_delete(self, grid):
        env, services, fleet = grid
        user = services.coordination
        services.storage.put("k2", "value")
        result = drive(env, user, lambda: user.call("storage", "delete", {"key": "k2"}))
        assert result["deleted"] is True
        result = drive(env, user, lambda: user.call("storage", "delete", {"key": "k2"}))
        assert result["deleted"] is False

    def test_list_keys_prefix(self, grid):
        env, services, fleet = grid
        user = services.coordination
        services.storage.put("case/D1", 1)
        services.storage.put("case/D2", 2)
        services.storage.put("other/x", 3)
        result = drive(env, user, lambda: user.call("storage", "list-keys", {"prefix": "case/"}))
        assert result["keys"] == ["case/D1", "case/D2"]

    def test_direct_api(self, grid):
        env, services, fleet = grid
        services.storage.put("a", 1)
        assert services.storage.get("a") == 1
        assert len(services.storage) == 1
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            services.storage.get("b")


class TestAuthentication:
    def test_ticket_lifecycle(self, grid):
        env, services, fleet = grid
        user = services.coordination
        services.authentication.add_principal("alice", "s3cret")
        auth = drive(
            env,
            user,
            lambda: user.call(
                "authentication", "authenticate",
                {"principal": "alice", "secret": "s3cret"},
            ),
        )
        check = drive(
            env,
            user,
            lambda: user.call("authentication", "validate", {"ticket": auth["ticket"]}),
        )
        assert check == {"valid": True, "principal": "alice"}

    def test_bad_credentials(self, grid):
        env, services, fleet = grid
        user = services.coordination
        services.authentication.add_principal("alice", "s3cret")
        with pytest.raises(ServiceError):
            drive(
                env,
                user,
                lambda: user.call(
                    "authentication", "authenticate",
                    {"principal": "alice", "secret": "wrong"},
                ),
            )

    def test_unknown_ticket_invalid(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env, user, lambda: user.call("authentication", "validate", {"ticket": "zz"})
        )
        assert result["valid"] is False

    def test_ticket_expiry(self, grid):
        env, services, fleet = grid
        services.authentication.add_principal("bob", "pw")
        ticket = services.authentication.issue("bob", "pw")
        env.engine.now = ticket.expires_at + 1.0
        from repro.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            services.authentication.check(ticket.token)

    def test_duplicate_principal(self, grid):
        env, services, fleet = grid
        services.authentication.add_principal("carol", "pw")
        from repro.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            services.authentication.add_principal("carol", "pw2")


class TestOntologyService:
    def test_grid_shell_available_by_default(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(env, user, lambda: user.call("ontology", "get-shell", {"name": "grid"}))
        kb = kb_from_dict(result["kb"])
        assert set(kb.class_names) == set(builtin_shell().class_names)
        assert len(kb) == 0

    def test_register_and_fetch_populated(self, grid):
        env, services, fleet = grid
        user = services.coordination
        from repro.ontology import kb_to_dict
        from repro.virolab import case_study_kb

        drive(
            env,
            user,
            lambda: user.call(
                "ontology",
                "register-ontology",
                {"name": "3DSD", "kb": kb_to_dict(case_study_kb())},
            ),
        )
        result = drive(env, user, lambda: user.call("ontology", "get-ontology", {"name": "3DSD"}))
        kb = kb_from_dict(result["kb"])
        assert len(kb.instances_of("Activity")) == 13

    def test_unknown_ontology_fails(self, grid):
        env, services, fleet = grid
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(env, user, lambda: user.call("ontology", "get-shell", {"name": "zz"}))

    def test_list_ontologies(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(env, user, lambda: user.call("ontology", "list-ontologies", {}))
        names = [o["name"] for o in result["ontologies"]]
        assert "grid" in names
