"""User Interface agents and intermittent connectivity."""

import pytest

from repro.errors import ServiceError
from repro.services.user_interface import UserInterface
from repro.virolab import CONS1, case_study_kb
from tests.services.conftest import drive

INITIAL = {
    "D1": {"Classification": "POD-Parameter"},
    "D2": {"Classification": "P3DR-Parameter"},
    "D3": {"Classification": "P3DR-Parameter"},
    "D4": {"Classification": "P3DR-Parameter"},
    "D5": {"Classification": "POR-Parameter"},
    "D6": {"Classification": "PSF-Parameter"},
    "D7": {"Classification": "2D Image"},
}


def request(**overrides):
    from repro.virolab import process_description

    out = {"process": process_description(), "initial_data": dict(INITIAL)}
    out.update(overrides)
    return out


def test_submit_and_poll(grid):
    env, services, fleet = grid
    ui = UserInterface(env, owner="alice")
    task = ui.submit(request(task="alice-case"))
    assert task == "alice-case"
    outcome = {}

    def watcher():
        status = yield from ui.await_result(task)
        outcome.update(status)

    env.engine.spawn(watcher(), "watch")
    env.run(max_events=2_000_000)
    assert outcome["completed"]
    assert outcome["data"]["D12"]["Classification"] == "Resolution File"


def test_auto_task_names(grid):
    env, services, fleet = grid
    ui = UserInterface(env, owner="bob")
    first = ui.submit(request())
    second = ui.submit(request())
    assert first == "bob-task-1" and second == "bob-task-2"


def test_result_survives_disconnect(grid):
    """The Section-2 scenario: the user drops offline while the case runs
    and still gets the result after reconnecting."""
    env, services, fleet = grid
    ui = UserInterface(env, owner="carol")
    task = ui.submit(request(task="carol-case"))
    outcome = {}

    def watcher():
        status = yield from ui.await_result(task)
        outcome.update(status)

    env.engine.spawn(watcher(), "watch")
    # Disconnect shortly after submission; reconnect long after completion.
    env.engine.schedule(1.0, ui.disconnect)
    env.engine.schedule(500.0, ui.reconnect)
    env.run(max_events=3_000_000)
    assert outcome["completed"]
    assert outcome["data"]["D12"]["Value"] == 7.5
    # The poll that succeeded happened after the reconnect.
    assert env.engine.now > 500.0


def test_unknown_task_status(grid):
    env, services, fleet = grid
    user = services.coordination
    status = drive(
        env, user, lambda: user.call("coordination", "task-status", {"task": "nope"})
    )
    assert status == {"known": False, "completed": False, "failed": False}


def test_failed_task_reported(grid):
    env, services, fleet = grid
    for ac in fleet:
        ac.crash()
    ui = UserInterface(env, owner="dave")
    task = ui.submit(request(task="doomed"))
    outcome = {}

    def watcher():
        try:
            yield from ui.await_result(task)
        except ServiceError as exc:
            outcome["error"] = str(exc)

    env.engine.spawn(watcher(), "watch")
    env.run(max_events=3_000_000)
    assert "failed" in outcome["error"]


def test_submit_from_kb(grid):
    env, services, fleet = grid
    ui = UserInterface(env, owner="erin")
    kb = case_study_kb()
    task = ui.submit_from_kb(kb, "T1", {"Cons1": CONS1})
    outcome = {}

    def watcher():
        status = yield from ui.await_result(task)
        outcome.update(status)

    env.engine.spawn(watcher(), "watch")
    env.run(max_events=2_000_000)
    assert outcome["completed"]
    assert task == "3DSD"
