"""Monitoring service: the journal/provenance RPC surface.

``journal`` / ``provenance`` / ``lineage`` expose the case flight
recorder over the monitoring protocol; ``journal-purge`` is the
retention verb.  Lazy sync: a case evicted from (or never resident in)
the live journal is transparently re-hydrated from its mirrored storage
blob.
"""

import pytest

from repro.errors import ServiceError, StorageError
from repro.obs.journal import journal_storage_key
from repro.services import standard_environment
from repro.workloads.many_cases import (
    many_cases_initial_data,
    many_cases_process,
    many_cases_services,
)
from tests.services.conftest import drive


def journal_grid(journal=True, journal_cases=None):
    kwargs = {"journal": journal, "spans": True}
    env, services, fleet = standard_environment(
        many_cases_services(), containers=3, **kwargs
    )
    if journal_cases is not None:
        env.journal.max_cases = journal_cases
    return env, services, fleet


def enact(env, services, cases=3):
    process = many_cases_process(rounds=2)
    user = services.coordination
    for index in range(cases):
        drive(
            env,
            user,
            lambda: user.call(
                "coordination",
                "execute-task",
                {
                    "process": process,
                    "initial_data": many_cases_initial_data(index),
                    "task": f"case-{index}",
                },
            ),
        )
    return user


class TestJournalRPC:
    def test_journal_summary_and_case_events(self):
        env, services, _ = journal_grid()
        user = enact(env, services)
        summary = drive(env, user, lambda: user.call("monitoring", "journal", {}))
        assert summary["enabled"] is True
        assert summary["stats"]["appended"] > 0
        assert "case-0" in summary["cases"]

        detail = drive(
            env, user,
            lambda: user.call("monitoring", "journal", {"case": "case-1"}),
        )
        kinds = [event["kind"] for event in detail["events"]]
        assert kinds[0] == "case-intake"
        assert kinds[-1] == "case-complete"
        assert "dispatch" in kinds and "execute" in kinds

        limited = drive(
            env, user,
            lambda: user.call(
                "monitoring", "journal", {"case": "case-1", "limit": 2}
            ),
        )
        assert len(limited["events"]) == 2

    def test_journal_disabled_reports_so(self):
        env, services, _ = journal_grid(journal=False)
        user = enact(env, services, cases=1)
        summary = drive(env, user, lambda: user.call("monitoring", "journal", {}))
        assert summary["enabled"] is False
        assert summary["cases"] == []

    def test_unknown_case_returns_empty_events(self):
        env, services, _ = journal_grid()
        user = enact(env, services, cases=1)
        detail = drive(
            env, user,
            lambda: user.call("monitoring", "journal", {"case": "ghost"}),
        )
        assert detail["events"] == []


class TestLazySync:
    def test_evicted_case_rehydrates_from_storage(self):
        # Cap the journal to one resident case: enacting three cases
        # evicts the first two after their mirror flush.
        env, services, _ = journal_grid(journal_cases=1)
        user = enact(env, services, cases=3)
        journal = env.journal
        assert not journal.has_case("case-0")
        assert services.storage.get(journal_storage_key("case-0"))

        before = journal.cases_synced
        detail = drive(
            env, user,
            lambda: user.call("monitoring", "journal", {"case": "case-0"}),
        )
        assert detail["events"], "evicted case should lazy-sync from storage"
        assert journal.cases_synced == before + 1
        assert journal.has_case("case-0")
        # second read is served from residency, no extra sync
        drive(
            env, user,
            lambda: user.call("monitoring", "journal", {"case": "case-0"}),
        )
        assert journal.cases_synced == before + 1


class TestProvenanceRPC:
    def test_provenance_graph_for_case(self):
        env, services, _ = journal_grid()
        user = enact(env, services)
        reply = drive(
            env, user,
            lambda: user.call("monitoring", "provenance", {"case": "case-0"}),
        )
        assert reply["case"] == "case-0"
        assert reply["events"] > 0
        assert reply["activities"]
        assert all(a["case"] == "case-0" for a in reply["activities"])
        assert reply["edges"]

    def test_lineage_backward_and_forward(self):
        env, services, _ = journal_grid()
        user = enact(env, services)
        lineage = drive(
            env, user,
            lambda: user.call(
                "monitoring", "lineage", {"key": "out", "case": "case-0"}
            ),
        )
        assert lineage["target"].endswith(":out")
        assert lineage["activities"]

        forward = drive(
            env, user,
            lambda: user.call(
                "monitoring",
                "lineage",
                {
                    "key": lineage["activities"][0]["name"],
                    "case": "case-0",
                    "direction": "descendants",
                },
            ),
        )
        assert forward["activities"]

    def test_lineage_unknown_key_is_service_error(self):
        env, services, _ = journal_grid()
        user = enact(env, services, cases=1)
        with pytest.raises(ServiceError):
            drive(
                env, user,
                lambda: user.call(
                    "monitoring", "lineage", {"key": "no-such-data"}
                ),
            )


class TestJournalPurge:
    def test_purge_clears_residency_and_storage(self):
        env, services, _ = journal_grid()
        user = enact(env, services)
        assert env.journal.stats()["cases"] == 3
        reply = drive(
            env, user, lambda: user.call("monitoring", "journal-purge", {})
        )
        assert reply["purged_cases"] == 3
        assert reply["purged_events"] > 0
        assert reply["storage_deleted"] == 3
        assert env.journal.stats()["cases"] == 0
        # cumulative counters survive the purge for post-mortem accounting
        assert reply["stats"]["appended"] > 0
        with pytest.raises(StorageError):
            services.storage.get(journal_storage_key("case-0"))
