"""Planning service: Figure-2 planning and Figure-3 re-planning protocols."""

import pytest

from repro.errors import ServiceError
from repro.plan import PlanNode
from repro.process import ProcessDescription, validate_process
from repro.virolab import planning_problem
from tests.services.conftest import drive


def test_plan_request_returns_valid_process(grid):
    env, services, fleet = grid
    user = services.coordination
    problem = planning_problem()
    result = drive(env, user, lambda: user.call("planning", "plan", {"problem": problem}))
    assert isinstance(result["plan"], PlanNode)
    assert isinstance(result["process"], ProcessDescription)
    validate_process(result["process"])
    assert 0.0 < result["fitness"] <= 1.0
    assert services.planning.plans_created == 1


def test_figure2_message_trace(grid):
    env, services, fleet = grid
    user = services.coordination
    drive(env, user, lambda: user.call("planning", "plan", {"problem": planning_problem()}))
    between = [
        t for t in env.trace.actions() if {t[0], t[1]} == {"coordination", "planning"}
    ]
    assert between == [
        ("coordination", "planning", "request", "plan"),
        ("planning", "coordination", "inform", "plan"),
    ]


def test_replan_excludes_failed_activities(grid):
    env, services, fleet = grid
    user = services.coordination
    problem = planning_problem()
    result = drive(
        env,
        user,
        lambda: user.call(
            "planning",
            "replan",
            {
                "problem": problem,
                "data": {"D1": {"Classification": "POD-Parameter"}},
                "failed_activities": ["POR", "P3DR4"],
            },
        ),
    )
    assert result["excluded_activities"] == ["P3DR4", "POR"]
    leaf_services = set()
    for activity in result["process"].end_user_activities():
        leaf_services.add(activity.name.rsplit("_", 1)[0])
    assert "POR" not in leaf_services
    assert "P3DR4" not in leaf_services
    assert services.planning.replans_created == 1


def test_figure3_protocol_steps(grid):
    env, services, fleet = grid
    user = services.coordination
    drive(
        env,
        user,
        lambda: user.call(
            "planning",
            "replan",
            {"problem": planning_problem(), "failed_activities": ["POR"]},
        ),
    )
    actions = env.trace.actions()

    def first_index(src, dst, action):
        for i, t in enumerate(actions):
            if (t[0], t[1], t[3]) == (src, dst, action):
                return i
        raise AssertionError(f"missing {src}->{dst} {action}")

    # The eight Figure-3 steps, in causal order.
    s1 = first_index("coordination", "planning", "replan")
    s2 = first_index("planning", "information", "lookup")
    s3 = first_index("information", "planning", "lookup")
    s4 = first_index("planning", "brokerage", "find-containers")
    s5 = first_index("brokerage", "planning", "find-containers")
    s6 = first_index("planning", "ac1", "can-execute")
    s7 = first_index("ac1", "planning", "can-execute")
    s8 = first_index("planning", "coordination", "replan")
    assert s1 < s2 < s3 < s4 < s5 < s6 < s7 < s8


def test_replan_probes_detect_dead_containers(grid):
    env, services, fleet = grid
    for ac in fleet:
        ac.crash()
    user = services.coordination
    with pytest.raises(ServiceError):
        drive(
            env,
            user,
            lambda: user.call(
                "planning",
                "replan",
                {"problem": planning_problem(), "failed_activities": []},
            ),
        )


def test_replan_without_probe_keeps_unfailed(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "planning",
            "replan",
            {
                "problem": planning_problem(),
                "failed_activities": ["PSF"],
                "probe": False,
            },
        ),
    )
    assert result["excluded_activities"] == ["PSF"]


def test_replan_all_excluded_fails(grid):
    env, services, fleet = grid
    user = services.coordination
    problem = planning_problem()
    with pytest.raises(ServiceError):
        drive(
            env,
            user,
            lambda: user.call(
                "planning",
                "replan",
                {
                    "problem": problem,
                    "failed_activities": list(problem.activity_names),
                    "probe": False,
                },
            ),
        )


def test_iterative_conditions_are_goal_driven(grid):
    """Plans emitted by the planning service must not contain always-true
    loop conditions (they would never terminate at enactment)."""
    env, services, fleet = grid
    user = services.coordination
    from repro.process import IterativeNode, process_to_ast
    from repro.process.conditions import TRUE

    for seed in range(3):
        result = drive(
            env, user, lambda: user.call("planning", "plan", {"problem": planning_problem()})
        )
        ast = process_to_ast(result["process"])
        for node in ast.walk():
            if isinstance(node, IterativeNode):
                assert node.condition is not TRUE
