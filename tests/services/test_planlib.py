"""The warm-start plan library inside the grid: ladder, persistence, guard."""

import pytest

from repro.errors import ServiceError
from repro.plan import sequential, tree_to_process
from repro.planner import GPConfig
from repro.planner.library import (
    PlanEntry,
    PlanLibrary,
    goal_signature,
    problem_digest,
    storage_key,
)
from repro.services import sharded_environment, standard_environment
from repro.services.planning import PlanningService
from repro.workloads.plan_mix import (
    plan_mix_kb,
    plan_mix_problem,
    plan_mix_services,
)
from tests.services.conftest import drive

CFG = dict(population_size=30, generations=6, smax=12)


def make_grid(library=None, kb=None, mode="on", **env_kwargs):
    return standard_environment(
        plan_mix_services(),
        containers=2,
        planner_config=GPConfig(library=mode, **CFG),
        plan_library=library,
        knowledge_base=kb,
        **env_kwargs,
    )


def seed_entry(lib, variant=0, plan=None):
    """Pre-store a known solving plan so repair tests are GP-independent."""
    problem = plan_mix_problem(variant)
    tree = plan or sequential("fetch", "clean", "analyze_a", "publish")
    process = tree_to_process(
        tree,
        name=f"plan-{problem.name}",
        library={
            name: spec.as_activity()
            for name, spec in problem.activities.items()
        },
    )
    entry = PlanEntry(
        digest=problem_digest(problem),
        goal_sig=goal_signature(problem.goals),
        plan=tree,
        process=process,
        fitness=0.96,
        goals=tuple(str(goal) for goal in problem.goals),
        problem_name=problem.name,
    )
    lib.put(entry)
    return entry


def plan_once(env, services, variant=0):
    user = services.coordination
    return drive(
        env,
        user,
        lambda: user.call(
            user.planner_name, "plan", {"problem": plan_mix_problem(variant)}
        ),
    )


def test_miss_then_verified_hit():
    lib = PlanLibrary()
    env, services, fleet = make_grid(lib, plan_mix_kb())
    first = plan_once(env, services)
    assert first["source"] == "miss"
    assert first["verified"] is False
    second = plan_once(env, services)
    assert second["source"] == "hit"
    assert second["verified"] is True
    assert second["generations"] == 0
    assert second["plan"] == first["plan"]
    assert lib.counters["hit"] == 1 and lib.counters["verify"] == 1
    assert env.metrics.total("planlib_hit") == 1


def test_miss_is_mirrored_into_persistent_storage():
    lib = PlanLibrary()
    env, services, fleet = make_grid(lib, plan_mix_kb())
    plan_once(env, services)
    problem = plan_mix_problem(0)
    key = storage_key(problem_digest(problem), goal_signature(problem.goals))
    user = services.coordination
    listing = drive(
        env,
        user,
        lambda: user.call("storage", "list-keys", {"prefix": "planlib/"}),
    )
    assert listing["keys"] == [key]
    meta = drive(
        env,
        user,
        lambda: user.call("storage", "list-meta", {"prefix": "planlib/"}),
    )
    assert [item["key"] for item in meta["items"]] == [key]
    assert all("payload" not in item for item in meta["items"])


def test_second_replica_syncs_hit_from_storage():
    """A fresh planning replica sharing the storage service warm-starts
    from entries another replica stored — one library by persistence."""
    lib = PlanLibrary()
    env, services, fleet = make_grid(lib, plan_mix_kb())
    first = plan_once(env, services)

    replica = PlanningService(
        env,
        name="planning-2",
        config=GPConfig(library="on", **CFG),
        library=PlanLibrary(),
        knowledge_base=plan_mix_kb(),
    )
    user = services.coordination
    reply = drive(
        env,
        user,
        lambda: user.call(
            "planning-2", "plan", {"problem": plan_mix_problem(0)}
        ),
    )
    assert reply["source"] == "hit"
    assert reply["verified"] is True
    assert reply["plan"] == first["plan"]
    assert replica.library.counters["sync"] == 1


def test_stale_entry_is_repaired_never_enacted_blind():
    lib = PlanLibrary()
    kb = plan_mix_kb()
    env, services, fleet = make_grid(lib, kb)
    stored = seed_entry(lib)
    # The stored publisher's registered Service instance vanishes.
    kb.remove_instance("SVC-publish")

    reply = plan_once(env, services)
    assert reply["source"] == "repair"
    assert reply["verified"] is True
    assert reply["generations"] == 0
    swapped = dict(tuple(pair) for pair in reply["swapped"])
    assert swapped == {"publish": "publish_backup"}
    assert "publish" not in reply["plan"].activities()
    assert "publish_backup" in reply["plan"].activities()
    # Only the flagged terminal moved: everything else is verbatim.
    assert reply["plan"].size == stored.plan.size
    assert lib.counters["repair"] == 1
    # The repaired entry replaced the stale one: the next request is a
    # clean verified hit on the repaired plan.
    again = plan_once(env, services)
    assert again["source"] == "hit"
    assert again["plan"] == reply["plan"]


def test_irreparable_stale_entry_is_rejected_not_enacted():
    lib = PlanLibrary()
    kb = plan_mix_kb()
    env, services, fleet = make_grid(lib, kb)
    seed_entry(lib)
    # Both substitutes vanish: no resolvable swap exists.
    kb.remove_instance("SVC-publish")
    kb.remove_instance("SVC-publish_backup")

    reply = plan_once(env, services)
    assert reply["source"] in ("miss", "seed")  # fell back to a full GP run
    assert reply["verified"] is False
    assert lib.counters["reject"] == 1
    assert env.metrics.total("planlib_reject") == 1


def test_unverifiable_hit_demotes_to_gp_seed():
    lib = PlanLibrary()
    env, services, fleet = make_grid(lib, kb=None)
    assert plan_once(env, services)["source"] == "miss"
    reply = plan_once(env, services)
    # No registry view ⇒ the exact entry may only warm-start GP, never
    # skip it.
    assert reply["source"] == "seed"
    assert reply["verified"] is False
    assert reply["generations"] > 0


def test_coordination_refuses_unverified_library_plan():
    lib = PlanLibrary()
    env, services, fleet = make_grid(lib, plan_mix_kb())
    template = plan_once(env, services)

    def doctored_plan(message):
        reply = dict(template)
        reply["source"] = "hit"
        reply["verified"] = False
        return reply

    services.planning.handle_plan = doctored_plan
    user = services.coordination
    with pytest.raises(ServiceError, match="not re-verified"):
        drive(
            env,
            user,
            lambda: user.call(
                user.name,
                "execute-task",
                {
                    "problem": plan_mix_problem(0),
                    "initial_data": {"src": {"Status": "ready"}},
                    "task": "guard-case",
                },
            ),
        )
    assert env.metrics.total("cases_refused") == 1


def test_library_off_reply_has_no_library_keys():
    env, services, fleet = make_grid(PlanLibrary(), plan_mix_kb(), mode="off")
    reply = plan_once(env, services)
    assert "source" not in reply
    assert "verified" not in reply
    assert env.metrics.total("planlib_miss") == 0


def test_library_rpc_stats_list_purge():
    lib = PlanLibrary()
    env, services, fleet = make_grid(lib, plan_mix_kb())
    plan_once(env, services, variant=0)
    plan_once(env, services, variant=1)
    user = services.coordination

    stats = drive(
        env, user, lambda: user.call("planning", "library-stats", {})
    )
    assert stats["enabled"] is True
    assert stats["entries"] == 2
    assert stats["counters"]["miss"] == 1  # variant 1 seeded off variant 0

    listing = drive(
        env, user, lambda: user.call("planning", "library-list", {"limit": 1})
    )
    assert len(listing["entries"]) == 1
    row = listing["entries"][0]
    assert row["problem"] == "plan-mix-v1"  # most recently used first

    purged = drive(
        env, user, lambda: user.call("planning", "library-purge", {})
    )
    assert purged["purged"] == 2
    assert len(lib) == 0
    remaining = drive(
        env,
        user,
        lambda: user.call("storage", "list-keys", {"prefix": "planlib/"}),
    )
    assert remaining["keys"] == []


def test_sharded_grid_shares_one_library():
    lib = PlanLibrary()
    grid = sharded_environment(
        plan_mix_services(),
        shards=2,
        containers=2,
        planner_config=GPConfig(library="on", **CFG),
        plan_library=lib,
        knowledge_base=plan_mix_kb(),
    )
    env = grid.env
    replies = {}

    def ask(group, slot):
        def run():
            replies[slot] = yield from group.coordination.call(
                group.coordination.planner_name,
                "plan",
                {"problem": plan_mix_problem(0)},
            )

        return run

    env.engine.spawn(ask(grid.groups[0], "a")(), "driver-a")
    env.run(max_events=5_000_000)
    env.engine.spawn(ask(grid.groups[1], "b")(), "driver-b")
    env.run(max_events=5_000_000)
    assert replies["a"]["source"] == "miss"
    # Planning is a shared singleton: the other shard's coordinator hits
    # the same library.
    assert replies["b"]["source"] == "hit"
    assert replies["b"]["plan"] == replies["a"]["plan"]
    assert len(lib) == 1
