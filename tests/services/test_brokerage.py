"""Brokerage: advertisements, performance DB, equivalence classes."""

from tests.services.conftest import drive


def test_find_containers(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env, user, lambda: user.call("brokerage", "find-containers", {"service": "POD"})
    )
    assert result["containers"] == ["ac1", "ac2", "ac3"]


def test_find_unknown_service_empty(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env, user, lambda: user.call("brokerage", "find-containers", {"service": "X"})
    )
    assert result["containers"] == []


def test_readvertise_replaces(grid):
    env, services, fleet = grid
    from repro.services import ContainerAd

    services.brokerage.advertise(
        ContainerAd("ac1", "siteA", ["ONLY"], 1.0, 0.0)
    )
    assert services.brokerage.containers_for("POD") == ["ac2", "ac3"]
    assert services.brokerage.containers_for("ONLY") == ["ac1"]


def test_performance_db(grid):
    env, services, fleet = grid
    user = services.coordination
    for duration, success in ((5.0, True), (7.0, True), (0.0, False)):
        drive(
            env,
            user,
            lambda d=duration, s=success: user.call(
                "brokerage",
                "record-performance",
                {"service": "POD", "container": "ac1", "duration": d, "success": s},
            ),
        )
    result = drive(
        env,
        user,
        lambda: user.call(
            "brokerage", "performance", {"service": "POD", "container": "ac1"}
        ),
    )
    assert result["runs"] == 3
    assert result["success_rate"] == (2 / 3)
    assert result["mean_duration"] == 6.0


def test_performance_unknown_pair_optimistic(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "brokerage", "performance", {"service": "X", "container": "Y"}
        ),
    )
    assert result == {"runs": 0, "success_rate": 1.0, "mean_duration": 0.0}


def test_equivalence_classes_by_speed(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env,
        user,
        lambda: user.call(
            "brokerage", "equivalence-classes", {"key_paths": ["Hardware/Speed"]}
        ),
    )
    # standard_environment speeds cycle (1.0, 2.0, 4.0) over 3 nodes.
    assert len(result["classes"]) == 3
    all_nodes = sorted(
        name for group in result["classes"] for name in group["resources"]
    )
    assert all_nodes == ["node1", "node2", "node3"]


def test_container_info(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(
        env, user, lambda: user.call("brokerage", "container-info", {"container": "ac2"})
    )
    assert result["known"] is True
    assert result["site"] == "siteB"
    assert "POD" in result["services"]
    missing = drive(
        env, user, lambda: user.call("brokerage", "container-info", {"container": "zz"})
    )
    assert missing["known"] is False
