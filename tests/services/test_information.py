"""Information service: registration and lookup."""

from tests.services.conftest import drive


def test_core_services_self_register(grid):
    env, services, fleet = grid
    census = services.information.census
    for kind in (
        "information", "brokerage", "matchmaking", "monitoring", "ontology",
        "storage", "authentication", "scheduling", "simulation", "planning",
        "coordination",
    ):
        assert census.get(kind) == 1, kind


def test_containers_registered(grid):
    env, services, fleet = grid
    assert services.information.census["application-container"] == 3
    # each container registers each hosted end-user service
    assert services.information.census["end-user"] == 3 * 4


def test_lookup_by_type(grid):
    env, services, fleet = grid
    user = services.coordination

    result = drive(env, user, lambda: user.call("information", "lookup", {"type": "brokerage"}))
    assert [p["provider"] for p in result["providers"]] == ["brokerage"]


def test_register_and_deregister_via_messages(grid):
    env, services, fleet = grid
    user = services.coordination

    drive(
        env,
        user,
        lambda: user.call(
            "information",
            "register",
            {"name": "myservice", "type": "end-user", "location": "siteX"},
        ),
    )
    assert services.information.find(name="myservice")

    result = drive(
        env, user, lambda: user.call("information", "deregister", {"name": "myservice"})
    )
    assert result["removed"] is True
    assert not services.information.find(name="myservice")


def test_lookup_unknown_type_empty(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(env, user, lambda: user.call("information", "lookup", {"type": "nope"}))
    assert result["providers"] == []


def test_ping(grid):
    env, services, fleet = grid
    user = services.coordination
    result = drive(env, user, lambda: user.call("information", "ping", {}))
    assert result["alive"] is True
