"""Simulation service and the environment bootstrap."""

import pytest

from repro.plan import concurrent, iterative, sequential
from repro.services import build_core_services, standard_environment
from repro.grid import GridEnvironment
from repro.virolab import plan_tree, planning_problem
from tests.services.conftest import drive, synthetic_services


class TestSimulationService:
    def test_simulate_plan_predicts_fig11(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call(
                "simulation",
                "simulate-plan",
                {"plan": plan_tree(), "problem": planning_problem()},
            ),
        )
        assert result["validity"] == 1.0
        assert result["goal"] == 1.0
        assert not result["truncated"]

    def test_simulate_bad_plan(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call(
                "simulation",
                "simulate-plan",
                {"plan": sequential("PSF", "POD"), "problem": planning_problem()},
            ),
        )
        assert result["validity"] == 0.5
        assert result["goal"] == 0.0

    def test_estimate_makespan_concurrency_helps(self, grid):
        env, services, fleet = grid
        user = services.coordination
        work = {"A": 10.0, "B": 10.0, "C": 10.0}
        par = drive(
            env,
            user,
            lambda: user.call(
                "simulation",
                "estimate-makespan",
                {"plan": concurrent("A", "B", "C"), "work": work},
            ),
        )
        seq = drive(
            env,
            user,
            lambda: user.call(
                "simulation",
                "estimate-makespan",
                {"plan": sequential("A", "B", "C"), "work": work},
            ),
        )
        assert par["makespan"] == 10.0
        assert seq["makespan"] == 30.0

    def test_estimate_makespan_iterations_multiply(self, grid):
        env, services, fleet = grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call(
                "simulation",
                "estimate-makespan",
                {"plan": iterative("A"), "work": {"A": 5.0}, "iterations": 3},
            ),
        )
        assert result["makespan"] == 15.0


class TestBootstrap:
    def test_build_core_services_census(self):
        env = GridEnvironment()
        services = build_core_services(env)
        assert len(services.all()) == 11
        assert len(env.agent_names) == 11
        # all registered with information
        assert sum(services.information.census.values()) == 11

    def test_standard_environment_shape(self):
        env, services, fleet = standard_environment(
            synthetic_services(), containers=5
        )
        assert len(fleet) == 5
        assert env.node_names == ("node1", "node2", "node3", "node4", "node5")
        sites = {ac.site for ac in fleet}
        assert sites == {"siteA", "siteB", "siteC"}

    def test_failure_probability_wired(self):
        env, services, fleet = standard_environment(
            synthetic_services(), containers=1, failure_probability=1.0
        )
        assert fleet[0].failures is not None
        assert fleet[0].failures.should_fail("x")

    def test_broker_knows_all_containers(self):
        env, services, fleet = standard_environment(
            synthetic_services(), containers=4
        )
        assert services.brokerage.containers_for("POD") == [
            "ac1", "ac2", "ac3", "ac4",
        ]
