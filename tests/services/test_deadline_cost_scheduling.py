"""Deadline- and cost-aware scheduling (Section-1 soft deadlines / costs)."""

import pytest

from repro.errors import ServiceError
from tests.services.conftest import drive


def schedule(grid, **extra):
    env, services, fleet = grid
    user = services.coordination
    content = {
        "service": "POD",
        "candidates": ["ac1", "ac2", "ac3"],
        "work": 100.0,
    }
    content.update(extra)
    return drive(
        env, user, lambda: user.call("scheduling", "schedule", content)
    )


def test_default_objective_is_time(grid):
    # speeds 1/2/4 -> estimates 100/50/25; fastest wins.
    result = schedule(grid)
    assert result["container"] == "ac3"
    assert result["estimate"] == pytest.approx(25.0)


def test_cost_objective_prefers_cheap(grid):
    # cost rates 1/2.5/6 -> costs 100/125/150; slowest-but-cheapest wins.
    result = schedule(grid, objective="cost")
    assert result["container"] == "ac1"
    assert result["cost"] == pytest.approx(100.0)


def test_deadline_filters_slow_candidates(grid):
    result = schedule(grid, deadline=60.0, objective="cost")
    # ac1 (estimate 100) is infeasible; ac2 (50s, cost 125) beats ac3
    # (25s, cost 150) on cost.
    assert result["container"] == "ac2"


def test_impossible_deadline_rejected(grid):
    with pytest.raises(ServiceError) as err:
        schedule(grid, deadline=10.0)
    assert "deadline" in str(err.value)


def test_deadline_feasible_fast_path(grid):
    result = schedule(grid, deadline=30.0)
    assert result["container"] == "ac3"


def test_unknown_objective_rejected(grid):
    with pytest.raises(ServiceError):
        schedule(grid, objective="karma")


def test_cost_reported_alongside_time(grid):
    result = schedule(grid)
    assert result["cost"] == pytest.approx(25.0 * 6.0)
    assert set(result) == {"service", "container", "estimate", "cost", "alternatives"}


def test_criticality_hint_avoids_queued_fast_container(grid):
    # Pile three pending assignments onto ac3 (the fastest container).
    for _ in range(3):
        assert schedule(grid)["container"] == "ac3"
    # Plain ranking still prefers ac3: estimate 25 * (1 + 3/4) = 43.75 < 50.
    assert schedule(grid)["container"] == "ac3"
    # A critical activity weights the queueing wait double, so the idle
    # ac2 (50) now beats the queued ac3 (18.75 * 2 + 25 = 62.5)...
    result = schedule(grid, criticality=1.0)
    assert result["container"] == "ac2"
    # ...while the reported estimate stays the plain (unweighted) value.
    assert result["estimate"] == pytest.approx(50.0)


def test_zero_criticality_is_the_default_ranking(grid):
    # An explicit zero hint ranks exactly like an absent one.
    result = schedule(grid, criticality=0.0)
    assert result["container"] == "ac3"
    assert result["estimate"] == pytest.approx(25.0)
