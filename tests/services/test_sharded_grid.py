"""The sharded multi-coordinator grid: routing, partitions, replication."""

import pytest

from repro.ontology import builtin_shell
from repro.services import sharded_environment, standard_environment
from repro.services.brokerage import ContainerAd
from repro.workloads.many_cases import (
    many_cases_initial_data,
    many_cases_process,
    many_cases_services,
)

CASES = 6


def _fingerprint(env):
    """Everything observable about the protocol trace, per delivery."""
    return [
        (
            event.time,
            message.sender,
            message.receiver,
            message.performative.value,
            message.action,
            message.conversation,
            message.message_id,
            message.trace_id,
            message.parent_id,
            repr(message.content),
        )
        for event in env.router.trace.events()
        for message in (event.message,)
    ]


def _enact(env, services, cases=CASES, rounds=2):
    process = many_cases_process(rounds)
    outcomes = [None] * cases

    def enact_case(index):
        reply = yield from services.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": process,
                "initial_data": many_cases_initial_data(index),
                "task": f"case-{index}",
            },
        )
        outcomes[index] = reply

    for index in range(cases):
        env.engine.spawn(enact_case(index), name=f"user-{index}")
    env.run(max_events=2_000_000)
    return outcomes


class TestSingleShardIdentity:
    def test_traces_byte_identical_to_unsharded_grid(self):
        env_a, services_a, _ = standard_environment(
            many_cases_services(), containers=3
        )
        outcomes_a = _enact(env_a, services_a)
        grid = sharded_environment(many_cases_services(), shards=1, containers=3)
        outcomes_b = _enact(grid.env, grid.services)
        assert repr(outcomes_a) == repr(outcomes_b)
        assert _fingerprint(env_a) == _fingerprint(grid.env)

    def test_single_shard_keeps_well_known_names(self):
        grid = sharded_environment(many_cases_services(), shards=1)
        (group,) = grid.groups
        assert group.coordination.name == "coordination"
        assert group.brokerage.name == "brokerage"
        assert group.ontology is grid.services.ontology

    def test_rejects_zero_shards_and_bad_labels(self):
        with pytest.raises(ValueError):
            sharded_environment(many_cases_services(), shards=0)
        with pytest.raises(ValueError):
            sharded_environment(
                many_cases_services(), shards=2, shard_labels=["a", "a"]
            )


class TestMultiShardEnactment:
    @pytest.fixture(scope="class")
    def run(self):
        grid = sharded_environment(many_cases_services(), shards=2, containers=3)
        outcomes = _enact(grid.env, grid.services)
        return grid, outcomes

    def test_all_cases_complete(self, run):
        _, outcomes = run
        assert all(o["status"] == "completed" for o in outcomes)

    def test_cases_land_on_their_ring_assigned_coordinator(self, run):
        grid, _ = run
        for index in range(CASES):
            case = f"case-{index}"
            owner_group = grid.group_for(case)
            carried = {r.task for r in owner_group.coordination.records}
            assert case in carried
            for group in grid.groups:
                if group is not owner_group:
                    assert case not in {
                        r.task for r in group.coordination.records
                    }

    def test_both_shards_carry_cases(self, run):
        grid, _ = run
        per_shard = [len(g.coordination.records) for g in grid.groups]
        assert sum(per_shard) == CASES
        assert all(count > 0 for count in per_shard)

    def test_bus_rewrote_logical_coordination_traffic(self, run):
        grid, _ = run
        assert grid.env.metrics.total("shard_routed") >= CASES

    def test_shard_label_reaches_case_spans(self):
        grid = sharded_environment(
            many_cases_services(), shards=2, containers=3, spans=True
        )
        _enact(grid.env, grid.services, cases=2)
        case_spans = grid.env.spans.spans(kind="case")
        assert case_spans
        labels = {s.attrs.get("shard") for s in case_spans}
        assert labels <= {"s0", "s1"} and None not in labels


class TestPartitionedRegistry:
    @pytest.fixture()
    def grid(self):
        return sharded_environment(many_cases_services(), shards=2, containers=2)

    def _find(self, grid, broker, service):
        reply = {}

        def probe():
            answer = yield from grid.services.information.call(
                broker.name, "find-containers", {"service": service}
            )
            reply.update(answer)

        grid.env.engine.spawn(probe(), name="probe")
        grid.env.run()
        return reply

    def _partition_for(self, grid, owned):
        """(owning broker, other broker) for a service, by ring owner."""
        owner = grid.ring.owner(owned)
        groups = {g.shard: g for g in grid.groups}
        other = next(label for label in groups if label != owner)
        return groups[owner].brokerage, groups[other].brokerage

    def test_ads_land_on_the_ring_owner_partition(self, grid):
        for service in ("ingest", "refine", "publish_full"):
            owner_broker, other_broker = self._partition_for(grid, service)
            assert owner_broker.containers_for(service)
            assert not other_broker.containers_for(service)

    def test_local_hit_answers_without_scatter(self, grid):
        service = "ingest"
        owner_broker, _ = self._partition_for(grid, service)
        reply = self._find(grid, owner_broker, service)
        assert reply["containers"] == ["ac1", "ac2"]
        metrics = grid.env.metrics
        assert metrics.total("broker_local_hit", agent=owner_broker.name) == 1
        assert metrics.total("broker_scatter") == 0

    def test_cross_shard_miss_scatters_to_the_owner(self, grid):
        service = "ingest"
        owner_broker, other_broker = self._partition_for(grid, service)
        reply = self._find(grid, other_broker, service)
        assert reply["containers"] == ["ac1", "ac2"]
        metrics = grid.env.metrics
        assert metrics.total("broker_scatter", agent=other_broker.name) == 1
        assert metrics.total("broker_scatter_hit", agent=other_broker.name) == 1

    def test_unknown_service_scatter_misses_everywhere(self, grid):
        broker = grid.groups[0].brokerage
        reply = self._find(grid, broker, "no-such-service")
        assert reply["containers"] == []
        assert grid.env.metrics.total("broker_scatter_miss", agent=broker.name) == 1


class TestOntologyReplication:
    def test_replicas_catch_up_on_join(self):
        grid = sharded_environment(many_cases_services(), shards=2)
        grid.env.run()
        primary = grid.services.ontology
        for group in grid.groups:
            assert group.ontology.version == primary.version
            assert group.ontology.names == primary.names

    def test_delta_push_keeps_replicas_coherent(self):
        grid = sharded_environment(many_cases_services(), shards=3)
        grid.env.run()
        primary = grid.services.ontology
        primary.add_ontology("virology", builtin_shell("virology"))
        grid.env.run()
        for group in grid.groups:
            assert group.ontology.version == primary.version
            assert "virology" in group.ontology.names

    def test_gap_triggers_catch_up(self):
        from repro.services.ontology_service import OntologyService

        grid = sharded_environment(many_cases_services(), shards=2)
        grid.env.run()
        primary = grid.services.ontology
        # A replica that subscribes mid-stream without the join catch-up:
        # its first delta arrives with a version gap.
        late = OntologyService(
            grid.env, "ontology@late", replica_of=primary.name
        )
        primary.subscribe_replica(late.name)
        primary.add_ontology("virology", builtin_shell("virology"))
        grid.env.run()
        assert grid.env.metrics.total("ontology_replica_gap", agent=late.name) == 1
        assert late.version == primary.version
        assert late.names == primary.names

    def test_replica_rejects_primary_api(self):
        from repro.errors import ServiceError

        grid = sharded_environment(many_cases_services(), shards=2)
        with pytest.raises(ServiceError):
            grid.services.ontology.start_replication()


class TestRegistryPushDedupe:
    def _subscribed_grid(self):
        env, services, fleet = standard_environment(
            many_cases_services(), containers=1
        )
        broker = services.brokerage
        broker.subscribe_registry(services.matchmaking.name)
        env.run()  # drain bootstrap traffic
        return env, broker

    def _ad(self, services, advertised_at):
        return ContainerAd(
            container="ac1",
            site="siteA",
            services=list(services),
            speed=1.0,
            advertised_at=advertised_at,
            node="node1",
        )

    def test_same_tick_repeat_push_is_deduped(self):
        env, broker = self._subscribed_grid()
        sent_before = env.metrics.total("messages_sent", agent=broker.name)
        # One container registering several services in one tick: the
        # repeat advertisements are strict no-ops for every subscriber.
        broker.advertise(self._ad(["ingest"], 0.0))
        broker.advertise(self._ad(["ingest"], 0.0))
        broker.advertise(self._ad(["ingest", "refine"], 0.0))
        env.run()
        assert env.metrics.total("registry_push_deduped", agent=broker.name) == 2
        sent = env.metrics.total("messages_sent", agent=broker.name) - sent_before
        assert sent == 1

    def test_new_services_same_tick_still_push(self):
        env, broker = self._subscribed_grid()
        sent_before = env.metrics.total("messages_sent", agent=broker.name)
        broker.advertise(self._ad(["ingest"], 0.0))
        # A service nobody announced this tick must still go out.
        broker.advertise(self._ad(["ingest", "extra-svc"], 0.0))
        env.run()
        assert env.metrics.total("registry_push_deduped", agent=broker.name) == 0
        sent = env.metrics.total("messages_sent", agent=broker.name) - sent_before
        assert sent == 2

    def test_next_tick_pushes_again(self):
        env, broker = self._subscribed_grid()
        broker.advertise(self._ad(["ingest"], 0.0))
        env.run()

        def later():
            yield 5.0
            broker.advertise(self._ad(["ingest"], env.engine.now))

        env.engine.spawn(later(), name="late-advertiser")
        env.run()
        assert env.metrics.total("registry_push_deduped", agent=broker.name) == 0

    def test_version_still_bumps_when_deduped(self):
        env, broker = self._subscribed_grid()
        version = broker.registry_version
        broker.advertise(self._ad(["ingest"], 0.0))
        broker.advertise(self._ad(["ingest"], 0.0))
        assert broker.registry_version == version + 2
