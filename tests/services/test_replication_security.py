"""Core-service replication failover + ticketed (secure) execution."""

import pytest

from repro.errors import ServiceError
from repro.planner import GPConfig
from repro.services import BrokerageService, ContainerAd, standard_environment
from repro.virolab import planning_problem, process_description
from tests.services.conftest import drive, synthetic_services

INITIAL = {
    "D1": {"Classification": "POD-Parameter"},
    "D2": {"Classification": "P3DR-Parameter"},
    "D3": {"Classification": "P3DR-Parameter"},
    "D4": {"Classification": "P3DR-Parameter"},
    "D5": {"Classification": "POR-Parameter"},
    "D6": {"Classification": "PSF-Parameter"},
    "D7": {"Classification": "2D Image"},
}


class TestBrokerageReplication:
    @pytest.fixture
    def replicated(self):
        env, services, fleet = standard_environment(
            synthetic_services(),
            containers=2,
            planner_config=GPConfig(population_size=20, generations=3),
        )
        # A second brokerage replica holding the same advertisements.
        replica = BrokerageService(env, name="brokerage2", site="core")
        for container in fleet:
            replica.advertise(
                ContainerAd(
                    container=container.name,
                    site=container.site,
                    services=list(container.hosted),
                    speed=container.node.hardware.speed,
                    advertised_at=0.0,
                    node=container.node.name,
                )
            )
        return env, services, fleet, replica

    def test_replica_registered_with_information(self, replicated):
        env, services, fleet, replica = replicated
        providers = services.information.find(type="brokerage")
        assert [p.provider for p in providers] == ["brokerage", "brokerage2"]

    def test_replan_survives_primary_broker_crash(self, replicated):
        env, services, fleet, replica = replicated
        services.brokerage.crash()
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call(
                "planning",
                "replan",
                {"problem": planning_problem(), "failed_activities": ["POR"]},
            ),
        )
        assert result["excluded_activities"] == ["POR"]
        # The failover actually used the replica.
        actions = env.trace.actions()
        assert ("planning", "brokerage2", "request", "find-containers") in actions

    def test_replan_fails_when_all_replicas_down(self, replicated):
        env, services, fleet, replica = replicated
        services.brokerage.crash()
        replica.crash()
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(
                env,
                user,
                lambda: user.call(
                    "planning",
                    "replan",
                    {"problem": planning_problem(), "failed_activities": []},
                ),
            )


class TestSecureExecution:
    @pytest.fixture
    def secure_grid(self):
        return standard_environment(
            synthetic_services(),
            containers=2,
            secure=True,
            planner_config=GPConfig(population_size=20, generations=3),
        )

    def test_enactment_acquires_ticket_and_completes(self, secure_grid):
        env, services, fleet = secure_grid
        user = services.coordination
        result = drive(
            env,
            user,
            lambda: user.call(
                "coordination",
                "execute-task",
                {
                    "process": process_description(),
                    "initial_data": dict(INITIAL),
                    "task": "secure-case",
                },
            ),
        )
        assert result["status"] == "completed"
        # An authenticate exchange happened exactly once (ticket cached).
        auth_calls = [
            t for t in env.trace.actions()
            if t[1] == "authentication" and t[3] == "authenticate"
        ]
        assert len(auth_calls) == 1

    def test_unticketed_direct_request_rejected(self, secure_grid):
        env, services, fleet = secure_grid
        user = services.planning  # any agent without credentials
        with pytest.raises(ServiceError) as err:
            drive(
                env,
                user,
                lambda: user.call(
                    "ac1",
                    "execute-activity",
                    {"service": "POD",
                     "inputs": {"D1": {"Classification": "POD-Parameter"},
                                "D7": {"Classification": "2D Image"}}},
                ),
            )
        assert "ticket" in str(err.value)

    def test_bogus_ticket_rejected(self, secure_grid):
        env, services, fleet = secure_grid
        user = services.planning
        with pytest.raises(ServiceError) as err:
            drive(
                env,
                user,
                lambda: user.call(
                    "ac1",
                    "execute-activity",
                    {"service": "POD", "ticket": "tkt-forged",
                     "inputs": {"D1": {"Classification": "POD-Parameter"},
                                "D7": {"Classification": "2D Image"}}},
                ),
            )
        assert "rejected ticket" in str(err.value)

    def test_insecure_grid_needs_no_ticket(self, grid):
        env, services, fleet = grid
        user = services.planning
        result = drive(
            env,
            user,
            lambda: user.call(
                "ac1",
                "execute-activity",
                {"service": "POD",
                 "inputs": {"D1": {"Classification": "POD-Parameter"},
                            "D7": {"Classification": "2D Image"}}},
            ),
        )
        assert result["outputs"]["D8"]["Classification"] == "Orientation File"
