"""Shared environment fixture for core-service tests."""

import pytest

from repro.errors import ServiceError
from repro.grid import Agent, EndUserService
from repro.planner import GPConfig
from repro.services import standard_environment
from repro.virolab import activity_specs


def synthetic_services(psf_values=(12.0, 9.5, 7.5)):
    """Case-study services with static effects; PSF yields a decreasing
    resolution so Cons1 loops terminate."""
    values = iter(list(psf_values) + [min(psf_values)] * 100)

    def psf_compute(props, payloads):
        return (
            {"D12": {"Classification": "Resolution File", "Value": next(values)}},
            {},
        )

    services = {}
    for name, spec in activity_specs().items():
        if spec.service == "PSF":
            continue
        services.setdefault(
            spec.service or name,
            EndUserService(spec.service or name, work=10.0, effects=spec.effects),
        )
    services["PSF"] = EndUserService("PSF", work=10.0, compute=psf_compute)
    return list(services.values())


@pytest.fixture
def grid():
    """(env, services, fleet) with 3 containers hosting synthetic case-study
    services and a fast planner."""
    return standard_environment(
        synthetic_services(),
        containers=3,
        planner_config=GPConfig(population_size=30, generations=5),
    )


def drive(env, agent: Agent, generator_fn, max_events=2_000_000):
    """Run *generator_fn* (bound to agent.call etc.) to completion; returns
    its result dict or raises the ServiceError it hit."""
    out = {}

    def main():
        try:
            out["result"] = yield from generator_fn()
        except ServiceError as exc:
            out["error"] = exc

    env.engine.spawn(main(), "driver")
    env.run(max_events=max_events)
    if "error" in out:
        raise out["error"]
    return out.get("result")
