"""Monitoring service: the span-telemetry plane (spans / case-profile /
watches / alerts / gauges) and the per-agent metrics health block."""

import pytest

from repro.errors import ServiceError
from repro.planner import GPConfig
from repro.services import standard_environment
from tests.services.conftest import drive, synthetic_services
from tests.services.test_coordination import INITIAL
from repro.virolab import process_description


@pytest.fixture
def spans_grid():
    """Like the shared ``grid`` fixture, but with span recording on."""
    return standard_environment(
        synthetic_services(),
        containers=3,
        planner_config=GPConfig(population_size=30, generations=5),
        spans=True,
    )


def enact(grid):
    env, services, fleet = grid
    user = services.coordination
    return drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {
                "process": process_description(),
                "initial_data": dict(INITIAL),
                "task": "3DSD",
            },
        ),
    )


class TestStatusMetricsBlock:
    def test_known_agent_reports_registry_health(self, grid):
        env, services, fleet = grid
        user = services.coordination
        # generate some traffic first so the counters are non-zero
        drive(env, user, lambda: user.call("monitoring", "census", {}))
        status = drive(
            env, user, lambda: user.call("monitoring", "status", {"agent": "monitoring"})
        )
        metrics = status["metrics"]
        assert set(metrics) == {
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "requests_handled",
            "rpc_errors",
        }
        assert metrics["messages_delivered"] >= 1
        assert metrics["requests_handled"] >= 1
        assert metrics["rpc_errors"] == 0

    def test_unknown_agent_has_no_metrics_block(self, grid):
        env, services, fleet = grid
        user = services.coordination
        status = drive(
            env, user, lambda: user.call("monitoring", "status", {"agent": "zz"})
        )
        assert "metrics" not in status


class TestSpansAction:
    def test_disabled_recorder_reports_enabled_false(self, grid):
        env, services, fleet = grid
        user = services.coordination
        reply = drive(env, user, lambda: user.call("monitoring", "spans", {}))
        assert reply["enabled"] is False
        assert reply["total_started"] == 0
        assert reply["spans"] == []

    def test_query_after_enactment(self, spans_grid):
        enact(spans_grid)
        env, services, fleet = spans_grid
        user = services.coordination
        reply = drive(env, user, lambda: user.call("monitoring", "spans", {}))
        assert reply["enabled"] is True
        assert reply["open"] == 0
        assert reply["total_closed"] == reply["total_started"]
        assert "case" in reply["kinds"]

    def test_filters_and_limit(self, spans_grid):
        enact(spans_grid)
        env, services, fleet = spans_grid
        user = services.coordination
        cases = drive(
            env, user,
            lambda: user.call("monitoring", "spans", {"kind": "case"}),
        )
        assert [s["kind"] for s in cases["spans"]] == ["case"]
        assert cases["spans"][0]["name"] == "3DSD"
        limited = drive(
            env, user,
            lambda: user.call("monitoring", "spans", {"limit": 3}),
        )
        assert len(limited["spans"]) == 3


class TestCaseProfileAction:
    def test_profile_over_rpc(self, spans_grid):
        enact(spans_grid)
        env, services, fleet = spans_grid
        user = services.coordination
        profile = drive(
            env, user,
            lambda: user.call("monitoring", "case-profile", {"case": "3DSD"}),
        )
        assert profile["case"] == "3DSD"
        assert profile["coverage"] >= 0.95
        by_kind = {row["kind"]: row for row in profile["rows"]}
        assert by_kind["activity"]["count"] == 17

    def test_disabled_recorder_is_service_error(self, grid):
        env, services, fleet = grid
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(
                env, user,
                lambda: user.call("monitoring", "case-profile", {"case": "3DSD"}),
            )


class TestWatchActions:
    def test_install_list_and_fire(self, spans_grid):
        env, services, fleet = spans_grid
        user = services.coordination
        installed = drive(
            env, user,
            lambda: user.call(
                "monitoring",
                "add-watch",
                {"name": "slow-activity", "bound": 0.0, "kind": "activity"},
            ),
        )
        assert installed == {"installed": "slow-activity", "rules": 1}
        watches = drive(env, user, lambda: user.call("monitoring", "watches", {}))
        assert watches["rules"] == [
            {
                "name": "slow-activity",
                "field": "duration",
                "op": ">",
                "bound": 0.0,
                "kind": "activity",
            }
        ]
        enact(spans_grid)  # every activity takes >0 sim seconds -> alerts
        alerts = drive(env, user, lambda: user.call("monitoring", "alerts", {}))
        assert alerts["total_alerts"] >= 17
        assert all(a["rule"] == "slow-activity" for a in alerts["alerts"])
        assert all(a["kind"] == "activity" for a in alerts["alerts"])
        limited = drive(
            env, user,
            lambda: user.call("monitoring", "alerts", {"limit": 2}),
        )
        assert len(limited["alerts"]) == 2

    def test_duplicate_watch_is_service_error(self, spans_grid):
        env, services, fleet = spans_grid
        user = services.coordination
        install = lambda: user.call(
            "monitoring", "add-watch", {"name": "r", "bound": 1.0}
        )
        drive(env, user, install)
        with pytest.raises(ServiceError):
            drive(env, user, install)

    def test_bad_operator_is_service_error(self, spans_grid):
        env, services, fleet = spans_grid
        user = services.coordination
        with pytest.raises(ServiceError):
            drive(
                env, user,
                lambda: user.call(
                    "monitoring",
                    "add-watch",
                    {"name": "bad", "bound": 1.0, "op": "!="},
                ),
            )


class TestGaugesAction:
    def test_unattached(self, grid):
        env, services, fleet = grid
        user = services.coordination
        reply = drive(env, user, lambda: user.call("monitoring", "gauges", {}))
        assert reply == {"attached": False, "series": {}}

    def test_attached_summary(self, spans_grid):
        env, services, fleet = spans_grid
        env.attach_gauges(period=5.0)
        enact(spans_grid)
        env.attach_gauges(period=5.0)  # restart after the drained run
        user = services.coordination
        reply = drive(env, user, lambda: user.call("monitoring", "gauges", {}))
        assert reply["attached"] is True
        assert any(k.startswith("node.") for k in reply["series"])
        assert "spans.open" in reply["series"]
