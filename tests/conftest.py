"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.planner import GPConfig
from repro.virolab import planning_problem


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def case_problem():
    """The Section-5 case-study planning problem."""
    return planning_problem()


@pytest.fixture
def small_gp_config():
    """A fast GP configuration for tests (not the Table-1 settings)."""
    return GPConfig(population_size=30, generations=5)
