"""Phantom, projection, POD, P3DR, POR, PSF numerics."""

import numpy as np
import pytest

from repro.errors import VirolabError
from repro.virolab import (
    angular_distance,
    backproject,
    fsc_curve,
    make_dataset,
    make_initial_model,
    make_phantom,
    match_orientations,
    p3dr,
    pod,
    por,
    project,
    psf,
    random_rotations,
    reference_projections,
    resolution_angstroms,
)


@pytest.fixture(scope="module")
def phantom():
    return make_phantom(size=24, seed=0)


@pytest.fixture(scope="module")
def dataset(phantom):
    return make_dataset(phantom, count=24, noise_sigma=0.0, seed=2)


class TestPhantom:
    def test_shape_and_normalization(self, phantom):
        assert phantom.shape == (24, 24, 24)
        assert phantom.max() == pytest.approx(1.0)
        assert phantom.min() >= 0.0

    def test_deterministic(self):
        assert np.allclose(make_phantom(size=16, seed=3), make_phantom(size=16, seed=3))
        assert not np.allclose(make_phantom(size=16, seed=3), make_phantom(size=16, seed=4))

    def test_mass_concentrated_inside(self, phantom):
        # Negligible density at the box boundary (projections stay inside).
        assert phantom[0].max() < 0.05
        assert phantom[-1].max() < 0.05

    def test_too_small_rejected(self):
        with pytest.raises(VirolabError):
            make_phantom(size=4)

    def test_initial_model_is_degraded_truth(self, phantom):
        initial = make_initial_model(phantom, seed=1)
        assert initial.shape == phantom.shape
        # correlated with the truth, but far from identical
        c = np.corrcoef(initial.ravel(), phantom.ravel())[0, 1]
        assert 0.3 < c < 0.995


class TestProjection:
    def test_projection_shape(self, phantom):
        image = project(phantom, np.eye(3))
        assert image.shape == (24, 24)

    def test_identity_projection_is_axis_sum(self, phantom):
        image = project(phantom, np.eye(3))
        assert np.allclose(image, phantom.sum(axis=0), atol=1e-6)

    def test_mass_preserved_under_rotation(self, phantom, rng):
        base = project(phantom, np.eye(3)).sum()
        for rotation in random_rotations(5, rng):
            assert project(phantom, rotation).sum() == pytest.approx(base, rel=0.05)

    def test_backproject_adjointness(self, phantom, rng):
        # B is the adjoint of P up to the 1/size smear normalization:
        # <P(v), i> == size * <v, B(i)>, modulo interpolation error.
        rotation = random_rotations(1, rng)[0]
        rng2 = np.random.default_rng(1)
        image = rng2.random((24, 24))
        lhs = float((project(phantom, rotation) * image).sum())
        rhs = 24.0 * float((phantom * backproject(image, rotation, 24)).sum())
        assert lhs == pytest.approx(rhs, rel=0.05)

    def test_non_cubic_rejected(self):
        with pytest.raises(VirolabError):
            project(np.zeros((8, 8, 4)), np.eye(3))

    def test_dataset_properties(self, dataset):
        assert dataset.count == 24
        assert dataset.size == 24
        even, odd = dataset.split_streams()
        assert len(even) == 12 and len(odd) == 12
        assert set(even) | set(odd) == set(range(24))

    def test_noise_level(self, phantom):
        clean = make_dataset(phantom, count=4, noise_sigma=0.0, seed=2)
        noisy = make_dataset(phantom, count=4, noise_sigma=0.2, seed=2)
        assert not np.allclose(clean.images, noisy.images)


class TestPOD:
    def test_exact_grid_recovers_exactly(self, phantom, dataset):
        refs = reference_projections(phantom, dataset.true_rotations)
        assigned, scores = match_orientations(
            dataset.images, refs, dataset.true_rotations
        )
        for a, b in zip(assigned, dataset.true_rotations):
            assert angular_distance(a, b) == pytest.approx(0.0, abs=1e-6)
        assert scores.min() > 0.999

    def test_pod_accuracy_on_clean_data(self, phantom, dataset):
        orientations, scores = pod(dataset.images, phantom, directions=128, inplane=12)
        errors = [
            np.degrees(angular_distance(a, b))
            for a, b in zip(orientations, dataset.true_rotations)
        ]
        assert np.median(errors) < 20.0
        assert scores.mean() > 0.9


class TestP3DR:
    def test_reconstruction_correlates_with_truth(self, phantom, dataset):
        model = p3dr(dataset.images, dataset.true_rotations)
        c = np.corrcoef(model.ravel(), phantom.ravel())[0, 1]
        assert c > 0.5

    def test_more_images_better(self, phantom):
        big = make_dataset(phantom, count=48, noise_sigma=0.0, seed=5)
        small_model = p3dr(big.images[:6], big.true_rotations[:6])
        full_model = p3dr(big.images, big.true_rotations)
        c_small = np.corrcoef(small_model.ravel(), phantom.ravel())[0, 1]
        c_full = np.corrcoef(full_model.ravel(), phantom.ravel())[0, 1]
        assert c_full > c_small

    def test_mismatched_lengths_rejected(self, dataset):
        with pytest.raises(VirolabError):
            p3dr(dataset.images[:3], dataset.true_rotations[:2])

    def test_empty_rejected(self, dataset):
        with pytest.raises(VirolabError):
            p3dr(dataset.images[:0], dataset.true_rotations[:0])


class TestPOR:
    def test_refinement_reduces_error(self, phantom, dataset):
        rng = np.random.default_rng(0)
        from repro.virolab import perturb_rotation

        noisy = np.stack(
            [perturb_rotation(r, 0.25, rng) for r in dataset.true_rotations]
        )
        refined, scores = por(
            dataset.images, noisy, phantom, trials=15, magnitude=0.3, seed=1
        )
        before = np.mean(
            [angular_distance(a, b) for a, b in zip(noisy, dataset.true_rotations)]
        )
        after = np.mean(
            [angular_distance(a, b) for a, b in zip(refined, dataset.true_rotations)]
        )
        assert after < before

    def test_scores_monotone_nondecreasing(self, phantom, dataset):
        refined, scores = por(
            dataset.images, dataset.true_rotations, phantom, trials=5, seed=1
        )
        # starting from the truth, greedy refinement cannot do worse
        assert scores.min() > 0.99


class TestPSF:
    def test_identical_maps_perfect_fsc(self, phantom):
        _, fsc = fsc_curve(phantom, phantom)
        assert np.allclose(fsc[1:], 1.0, atol=1e-9)
        assert resolution_angstroms(phantom, phantom) == pytest.approx(4.0)

    def test_independent_noise_fsc_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(24, 24, 24))
        b = rng.normal(size=(24, 24, 24))
        _, fsc = fsc_curve(a, b)
        assert np.abs(fsc[1:]).mean() < 0.2
        assert resolution_angstroms(a, b) > 10.0

    def test_resolution_monotone_in_blur(self, phantom):
        from scipy import ndimage

        mild = ndimage.gaussian_filter(phantom, 0.8)
        heavy = ndimage.gaussian_filter(phantom, 2.5)
        res_mild = resolution_angstroms(phantom, mild)
        res_heavy = resolution_angstroms(phantom, heavy)
        assert res_mild <= res_heavy

    def test_psf_dict(self, phantom):
        result = psf(phantom, phantom)
        assert set(result) == {"resolution", "frequencies", "fsc"}

    def test_shape_mismatch_rejected(self, phantom):
        with pytest.raises(VirolabError):
            fsc_curve(phantom, phantom[:12, :12, :12])
