"""Figures 10, 11, 13 as data: structural fidelity checks."""

import pytest

from repro.plan import normalize, process_to_tree
from repro.process import validate_process
from repro.process.conditions import MappingSource
from repro.virolab import (
    ACTIVITY_TABLE,
    CONDITIONS,
    CONS1,
    DATA_CLASSIFICATIONS,
    INITIAL_DATA,
    TRANSITION_TABLE,
    activity_specs,
    case_study_kb,
    plan_tree,
    planning_problem,
    process_description,
)


class TestFigure10:
    def test_census(self):
        pd = process_description()
        assert len(pd.end_user_activities()) == 7
        assert len(pd.flow_control_activities()) == 6
        assert len(pd.transitions) == 15
        validate_process(pd)

    def test_transition_table_matches(self):
        pd = process_description()
        for tr_id, src, dst in TRANSITION_TABLE:
            tr = pd.transition(tr_id)
            assert (tr.source, tr.destination) == (src, dst)

    def test_loop_condition_on_tr14(self):
        pd = process_description()
        assert pd.transition("TR14").condition is CONS1
        assert pd.transition("TR15").condition is None

    def test_service_bindings(self):
        pd = process_description()
        for name in ("P3DR1", "P3DR2", "P3DR3", "P3DR4"):
            assert pd.activity(name).service == "P3DR"


class TestFigure11:
    def test_tree_size_ten(self):
        assert plan_tree().size == 10

    def test_recovered_tree_matches(self):
        recovered = process_to_tree(process_description())
        assert normalize(recovered) == normalize(plan_tree())


class TestConditions:
    def test_c1_semantics(self):
        src = MappingSource(
            {
                "D1": {"Classification": "POD-Parameter"},
                "D7": {"Classification": "2D Image"},
            }
        )
        assert CONDITIONS["C1"].evaluate(src)

    def test_cons1_loops_while_coarse(self):
        coarse = MappingSource(
            {"D12": {"Classification": "Resolution File", "Value": 12.0}}
        )
        fine = MappingSource(
            {"D12": {"Classification": "Resolution File", "Value": 7.5}}
        )
        assert CONS1.evaluate(coarse)
        assert not CONS1.evaluate(fine)

    def test_all_conditions_defined(self):
        assert set(CONDITIONS) == {f"C{i}" for i in range(1, 9)}


class TestPlanningProblem:
    def test_seven_activities(self):
        specs = activity_specs()
        assert len(specs) == 7

    def test_initial_data_is_d1_to_d7(self):
        assert INITIAL_DATA == ("D1", "D2", "D3", "D4", "D5", "D6", "D7")

    def test_problem_goal_needs_pipeline(self, case_problem):
        assert case_problem.goal_score(case_problem.initial_state) == 0.0

    def test_activity_bindings_match_figure13(self):
        specs = activity_specs()
        assert specs["POD"].inputs == ("D1", "D7")
        assert specs["POD"].outputs == ("D8",)
        assert specs["POR"].inputs == ("D5", "D7", "D8", "D9")
        assert specs["PSF"].outputs == ("D12",)


class TestFigure13KB:
    @pytest.fixture(scope="class")
    def kb(self):
        return case_study_kb()

    def test_instance_census(self, kb):
        assert len(kb.instances_of("Activity")) == 13
        assert len(kb.instances_of("Transition")) == 15
        assert len(kb.instances_of("Data")) == 12
        assert len(kb.instances_of("Service")) == 4
        assert len(kb.instances_of("Task")) == 1

    def test_activity_types(self, kb):
        types = {
            inst.get("Name"): inst.get("Type")
            for inst in kb.instances_of("Activity")
        }
        assert types["BEGIN"] == "Begin"
        assert types["FORK"] == "Fork"
        assert types["PSF"] == "End-user"

    def test_task_links_resolve(self, kb):
        task = kb.find_one("Task", Name="3DSD")
        pd_inst = kb.resolve(task, "Process Description")
        cd_inst = kb.resolve(task, "Case Description")
        assert pd_inst.get("Name") == "PD-3DSD"
        assert cd_inst.get("Name") == "CD-3DSD"
        activities = kb.resolve(pd_inst, "Activity Set")
        assert len(activities) == 13

    def test_data_classifications(self, kb):
        for name, classification in DATA_CLASSIFICATIONS.items():
            inst = kb.get_instance(name)
            assert inst.get("Classification") == classification

    def test_validates(self, kb):
        kb.validate_all()

    def test_activity_table_consistent_with_kb(self, kb):
        for act_id, name, _, service, inputs, outputs, _ in ACTIVITY_TABLE:
            inst = kb.get_instance(act_id)
            assert inst.get("Name") == name
            if inputs:
                assert tuple(inst.get("Input Data Set")) == inputs
            if outputs:
                assert tuple(inst.get("Output Data Set")) == outputs
