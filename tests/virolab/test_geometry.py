"""Rotation utilities: group properties, grids, perturbations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VirolabError
from repro.virolab import (
    angular_distance,
    euler_to_matrix,
    orientation_grid,
    perturb_rotation,
    random_rotations,
)

_angles = st.floats(0, 2 * np.pi, allow_nan=False)


def is_rotation(m, tol=1e-9):
    return (
        np.allclose(m @ m.T, np.eye(3), atol=tol)
        and abs(np.linalg.det(m) - 1.0) < tol
    )


class TestEuler:
    @given(_angles, _angles, _angles)
    @settings(max_examples=100, deadline=None)
    def test_always_a_rotation(self, phi, theta, psi):
        assert is_rotation(euler_to_matrix(phi, theta, psi))

    def test_identity(self):
        assert np.allclose(euler_to_matrix(0, 0, 0), np.eye(3))

    def test_z_rotation_composition(self):
        a = euler_to_matrix(0.3, 0, 0)
        b = euler_to_matrix(0, 0, 0.4)
        # phi and psi are both z-rotations when theta = 0.
        assert np.allclose(a @ b, euler_to_matrix(0.7, 0, 0), atol=1e-12)


class TestRandomRotations:
    def test_all_valid(self, rng):
        for rotation in random_rotations(50, rng):
            assert is_rotation(rotation, tol=1e-8)

    def test_deterministic(self):
        assert np.allclose(random_rotations(5, 3), random_rotations(5, 3))

    def test_roughly_uniform_trace(self, rng):
        # Under Haar measure trace = 1 + 2cos(theta) has expectation 0.
        traces = [np.trace(r) for r in random_rotations(3000, rng)]
        assert abs(np.mean(traces)) < 0.1

    def test_count_validation(self, rng):
        with pytest.raises(VirolabError):
            random_rotations(0, rng)


class TestOrientationGrid:
    def test_product_structure(self):
        grid = orientation_grid(8, 4)
        assert grid.shape == (32, 3, 3)
        for rotation in grid:
            assert is_rotation(rotation, tol=1e-9)

    def test_grid_covers_so3(self):
        # Every random rotation must have a grid neighbour within a bound
        # that shrinks as the grid grows.
        rng = np.random.default_rng(0)
        targets = random_rotations(30, rng)
        coarse = orientation_grid(32, 6)
        fine = orientation_grid(128, 12)

        def nearest(grid, target):
            return min(angular_distance(g, target) for g in grid)

        coarse_err = np.median([nearest(coarse, t) for t in targets])
        fine_err = np.median([nearest(fine, t) for t in targets])
        assert fine_err < coarse_err
        assert np.degrees(fine_err) < 15.0

    def test_invalid_sizes(self):
        with pytest.raises(VirolabError):
            orientation_grid(0, 4)


class TestPerturbAndDistance:
    def test_distance_zero_to_self(self, rng):
        r = random_rotations(1, rng)[0]
        assert angular_distance(r, r) == pytest.approx(0.0, abs=1e-6)

    def test_distance_symmetric(self, rng):
        a, b = random_rotations(2, rng)
        assert angular_distance(a, b) == pytest.approx(angular_distance(b, a))

    def test_perturbation_bounded(self, rng):
        r = random_rotations(1, rng)[0]
        for _ in range(50):
            p = perturb_rotation(r, 0.2, rng)
            assert is_rotation(p, tol=1e-8)
            assert angular_distance(r, p) <= 0.2 + 1e-9

    def test_zero_magnitude_is_identity(self, rng):
        r = random_rotations(1, rng)[0]
        assert np.allclose(perturb_rotation(r, 0.0, rng), r)
