"""The in-process reference pipeline (Figure-10 semantics)."""

import numpy as np
import pytest

from repro.errors import VirolabError
from repro.virolab import angular_distance, default_problem_data, psf, run_pipeline


@pytest.fixture(scope="module")
def problem_data():
    return default_problem_data(size=24, count=32, noise_sigma=0.05, seed=0)


@pytest.fixture(scope="module")
def result(problem_data):
    phantom, initial, dataset = problem_data
    return run_pipeline(dataset, initial, goal_resolution=8.0, max_iterations=4)


def test_runs_at_least_one_iteration(result):
    assert result.iterations >= 1
    assert result.history[0].iteration == 1


def test_stops_at_goal_or_plateau(result):
    last = result.history[-1].resolution
    if last > 8.0:
        # stopped on plateau: last iteration did not improve
        assert len(result.history) >= 2 or result.iterations == 4


def test_resolution_positive_and_finite(result):
    for stats in result.history:
        assert 0 < stats.resolution < 1e3


def test_orientations_not_random(problem_data, result):
    phantom, initial, dataset = problem_data
    errors = [
        np.degrees(angular_distance(a, b))
        for a, b in zip(result.orientations, dataset.true_rotations)
    ]
    # random orientations would give a median near 120 degrees
    assert np.median(errors) < 45.0


def test_model_better_than_initial(problem_data, result):
    phantom, initial, dataset = problem_data
    res_model = psf(result.model, phantom)["resolution"]
    assert result.model.shape == phantom.shape
    # the reconstruction must carry real signal about the truth
    c = np.corrcoef(result.model.ravel(), phantom.ravel())[0, 1]
    assert c > 0.5
    assert res_model < 40.0


def test_refinement_improves_resolution_with_noise():
    """With noisier data the first pass misses the goal and the iterative
    loop has to earn its keep: the resolution trajectory must be
    non-increasing."""
    phantom, initial, dataset = default_problem_data(
        size=24, count=32, noise_sigma=0.15, seed=1
    )
    result = run_pipeline(dataset, initial, goal_resolution=4.5, max_iterations=4)
    resolutions = [h.resolution for h in result.history]
    assert len(resolutions) >= 2
    assert resolutions[-1] <= resolutions[0] + 1e-9


def test_zero_iterations_rejected(problem_data):
    phantom, initial, dataset = problem_data
    with pytest.raises(VirolabError):
        run_pipeline(dataset, initial, max_iterations=0)


def test_deterministic(problem_data):
    phantom, initial, dataset = problem_data
    a = run_pipeline(dataset, initial, max_iterations=2, seed=5)
    b = run_pipeline(dataset, initial, max_iterations=2, seed=5)
    assert np.allclose(a.model, b.model)
    assert [h.resolution for h in a.history] == [h.resolution for h in b.history]
