"""Synthetic planning-problem generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanningError
from repro.planner import forward_search, simulate_plan
from repro.plan import sequential
from repro.workloads import (
    chain_problem,
    choice_problem,
    diamond_problem,
    distractor_problem,
    random_problem,
)


class TestChain:
    def test_exact_order_required(self):
        problem = chain_problem(3)
        good = simulate_plan(sequential("a1", "a2", "a3"), problem)
        bad = simulate_plan(sequential("a3", "a2", "a1"), problem)
        assert good.validity_fitness() == 1.0
        assert good.goal_fitness(problem) == 1.0
        assert bad.goal_fitness(problem) == 0.0

    def test_invalid_length(self):
        with pytest.raises(PlanningError):
            chain_problem(0)


class TestDiamond:
    def test_all_parts_needed(self):
        problem = diamond_problem(3)
        partial = simulate_plan(
            sequential("produce", "mid1", "mid2", "join"), problem
        )
        full = simulate_plan(
            sequential("produce", "mid1", "mid2", "mid3", "join"), problem
        )
        assert partial.goal_fitness(problem) == 0.0
        assert full.goal_fitness(problem) == 1.0

    def test_invalid_width(self):
        with pytest.raises(PlanningError):
            diamond_problem(1)


class TestChoice:
    def test_either_route_works(self):
        problem = choice_problem()
        left = simulate_plan(sequential("left1", "left2"), problem)
        right = simulate_plan(sequential("right1", "right2"), problem)
        assert left.goal_fitness(problem) == 1.0
        assert right.goal_fitness(problem) == 1.0


class TestDistractor:
    def test_junk_never_applicable(self):
        problem = distractor_problem(2, 4)
        report = simulate_plan(sequential("junk0", "a1", "a2"), problem)
        assert report.validity_fitness() == pytest.approx(2 / 3)
        assert report.goal_fitness(problem) == 1.0


class TestRandom:
    @given(
        n=st.integers(3, 20),
        layers=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_solvable(self, n, layers, seed):
        if n < layers:
            return
        problem = random_problem(n, layers, seed=seed)
        result = forward_search(problem)
        assert result.solved

    def test_deterministic(self):
        a = random_problem(8, 3, seed=1)
        b = random_problem(8, 3, seed=1)
        assert a.activity_names == b.activity_names
