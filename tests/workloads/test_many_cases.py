"""The many_cases enactment workload and the throughput fast paths."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import many_cases_process, run_many_cases


CASES = 4


@pytest.fixture(scope="module")
def default_run():
    return run_many_cases(cases=CASES, containers=2)


class TestWorkload:
    def test_all_cases_complete(self, default_run):
        assert default_run["completed"] == CASES
        assert all(o["status"] == "completed" for o in default_run["outcomes"])

    def test_activity_count(self, default_run):
        # ingest + 3 fork parts + 3 refine rounds + 1 publish = 8 per case.
        assert default_run["activities_run"] == 8 * CASES

    def test_publish_route_alternates(self, default_run):
        outs = [o["data"]["out"] for o in default_run["outcomes"]]
        assert [("Archived" in props) for props in outs] == [
            i % 2 != 0 for i in range(CASES)
        ]

    def test_loop_runs_requested_rounds(self, default_run):
        for outcome in default_run["outcomes"]:
            assert (
                sum(1 for e in outcome["events"] if e[1] == "loop-done") == 1
            )
            (loop_done,) = [e for e in outcome["events"] if e[1] == "loop-done"]
            assert loop_done[2] == "3 iterations"

    def test_rejects_zero_cases(self):
        with pytest.raises(WorkloadError):
            run_many_cases(cases=0)

    def test_process_is_well_structured(self):
        from repro.process import process_to_ast

        assert process_to_ast(many_cases_process()) is not None


class TestProgramCache:
    def test_shared_compilation_across_cases(self, default_run):
        counters = default_run["counters"]
        assert counters["program_cache_miss"] == 1
        assert counters["program_cache_hit"] == CASES - 1

    def test_cache_disabled_still_completes_identically(self, default_run):
        uncached = run_many_cases(cases=CASES, containers=2, program_cache_size=0)
        assert uncached["counters"]["program_cache_hit"] == 0
        assert uncached["counters"]["program_cache_miss"] == 0
        # Byte-identical enactment: same events at the same times.
        assert [o["events"] for o in uncached["outcomes"]] == [
            o["events"] for o in default_run["outcomes"]
        ]


class TestRouterFastPath:
    def test_tracing_off_same_enactment(self, default_run):
        fast = run_many_cases(cases=CASES, containers=2, tracing=False)
        assert fast["messages"] == 0  # nothing recorded...
        assert (
            fast["counters"]["messages_delivered"]
            == default_run["counters"]["messages_delivered"]
        )  # ...but everything delivered
        assert [o["events"] for o in fast["outcomes"]] == [
            o["events"] for o in default_run["outcomes"]
        ]


class TestCandidateCache:
    def test_cache_hits_and_saved_messages(self, default_run):
        cached = run_many_cases(cases=CASES, containers=2, match_cache_ttl=300.0)
        counters = cached["counters"]
        assert counters["match_cache_hit"] > 0
        assert (
            counters["messages_sent"] < default_run["counters"]["messages_sent"]
        )
        assert cached["completed"] == CASES

    def test_registry_change_invalidates_selectively(self):
        # The broker's push names the affected services: only their cached
        # candidate sets drop; every other service's entries stay warm.
        result = run_many_cases(cases=2, containers=2, match_cache_ttl=1e9)
        services = result["services"]
        matchmaker = services.matchmaking
        cached_services = {key[0] for key in matchmaker._candidate_cache}
        assert "ingest" in cached_services  # warm after the run
        assert len(cached_services) > 1
        from repro.services.brokerage import ContainerAd

        services.brokerage.advertise(
            ContainerAd("ac-new", "siteA", ["ingest"], 1.0, 0.0)
        )
        result["env"].run()  # deliver the registry-changed push
        remaining = {key[0] for key in matchmaker._candidate_cache}
        assert "ingest" not in remaining
        assert remaining == cached_services - {"ingest"}

    def test_registry_push_without_detail_flushes_everything(self):
        # Backwards-compatible push shape (no container/services payload):
        # subscribers fall back to a full flush.
        result = run_many_cases(cases=2, containers=2, match_cache_ttl=1e9)
        matchmaker = result["services"].matchmaking
        assert matchmaker._candidate_cache
        matchmaker.invalidate_candidates()
        assert not matchmaker._candidate_cache


class TestMissCoalescing:
    def test_concurrent_cold_misses_join_one_lookup(self):
        # All cases fan out at t~0, so without in-flight coalescing every
        # cold key misses once per case (the stampede).  With it, misses
        # equal the distinct-key count and the rest join the leader's RPC.
        result = run_many_cases(
            cases=8,
            containers=2,
            sched_cache_ttl=300.0,
            coord_cache_ttl=300.0,
        )
        counters = result["counters"]
        assert counters["sched_fact_cache_join"] > 0
        assert counters["coord_match_cache_join"] > 0
        # Distinct fact keys only: ("status", c) and ("perf", service, c).
        distinct = len(result["services"].scheduling._fact_cache)
        assert counters["sched_fact_cache_miss"] == distinct
        assert result["completed"] == 8


class TestMetricsKillSwitch:
    def test_disabled_registry_zero_counters_same_outcomes(self, default_run):
        off = run_many_cases(cases=CASES, containers=2, metrics=False)
        assert off["completed"] == CASES
        assert all(value == 0 for value in off["counters"].values())
        # Metrics never influence behaviour: identical per-case events.
        assert [o["events"] for o in off["outcomes"]] == [
            o["events"] for o in default_run["outcomes"]
        ]


class TestAsyncReports:
    def test_one_way_reports_reach_broker_with_fewer_messages(self, default_run):
        result = run_many_cases(cases=CASES, containers=2, async_reports=True)
        assert result["completed"] == CASES
        broker = result["services"].brokerage
        recorded = sum(
            perf.runs for perf in broker._performance.values()
        )
        assert recorded == result["activities_run"]
        assert (
            result["counters"]["messages_sent"]
            < default_run["counters"]["messages_sent"]
        )


class TestCoalescedEngineWorkload:
    def test_coalesce_completes_and_is_deterministic(self):
        runs = [
            run_many_cases(cases=4, containers=2, tracing=False, coalesce=True)
            for _ in range(2)
        ]
        assert all(r["completed"] == 4 for r in runs)
        assert runs[0]["makespan"] == runs[1]["makespan"]
        assert runs[0]["engine_events"] == runs[1]["engine_events"]
        assert [o["events"] for o in runs[0]["outcomes"]] == [
            o["events"] for o in runs[1]["outcomes"]
        ]


class TestParallelDriver:
    def test_shard_bounds(self):
        from repro.workloads.many_cases import _shard_bounds

        assert _shard_bounds(10, 3) == [(0, 4), (4, 3), (7, 3)]
        assert _shard_bounds(6, 2) == [(0, 3), (3, 3)]
        # Never more shards than cases; never an empty shard.
        assert _shard_bounds(3, 8) == [(0, 1), (1, 1), (2, 1)]
        assert _shard_bounds(5, 1) == [(0, 5)]

    def test_parallel_merge_matches_serial(self):
        serial = run_many_cases(cases=6, containers=2, tracing=False)
        merged = run_many_cases(
            cases=6, containers=2, tracing=False, parallel=2
        )
        assert merged["parallel"] == 2
        assert merged["shards"] == [
            {"first_case": 0, "cases": 3},
            {"first_case": 3, "cases": 3},
        ]
        assert merged["completed"] == serial["completed"] == 6
        assert merged["activities_run"] == serial["activities_run"]
        # Per-case results are contention-independent; event timings are
        # not (each shard runs with less queueing), so compare outcomes
        # minus their timelines.
        for mine, theirs in zip(merged["outcomes"], serial["outcomes"]):
            assert mine["status"] == theirs["status"] == "completed"
            assert mine["data"] == theirs["data"]
            assert mine["activities_run"] == theirs["activities_run"]
        # Live objects cannot cross process boundaries.
        assert merged["env"] is None and merged["services"] is None

    def test_first_case_offsets_preserved(self):
        result = run_many_cases(
            cases=5, containers=2, tracing=False, parallel=2
        )
        assert [shard["first_case"] for shard in result["shards"]] == [0, 3]
        # Case identity survives sharding: the offset run names its task
        # stream case-3.. and the merged outcome order is global.
        offset = run_many_cases(
            cases=2, containers=2, tracing=False, first_case=3
        )
        assert offset["completed"] == 2

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        class Boom:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool for you")

        # The driver imports the pool class at call time, so patching the
        # stdlib module intercepts it.
        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", Boom
        )
        result = run_many_cases(
            cases=4, containers=2, tracing=False, parallel=2
        )
        assert result["completed"] == 4
        assert result["pool_error"] is not None
        assert "no pool for you" in result["pool_error"]


class TestShardedDriver:
    def test_shard_assignment_is_deterministic_and_total(self):
        from repro.workloads import shard_assignment

        first = shard_assignment(50, 4)
        again = shard_assignment(50, 4)
        assert first == again
        indices = sorted(i for bucket in first.values() for i in bucket)
        assert indices == list(range(50))
        # Population-independent: a case keeps its shard when the
        # population grows.
        bigger = shard_assignment(200, 4)
        for label, bucket in first.items():
            assert set(bucket) <= set(bigger[label])

    def test_single_shard_is_byte_identical_to_default(self):
        default = run_many_cases(cases=4, containers=2)
        sharded = run_many_cases(cases=4, containers=2, shards=1)
        assert repr(sharded["outcomes"]) == repr(default["outcomes"])
        fingerprint = [
            [
                (e.time, m.sender, m.receiver, m.action, m.conversation,
                 m.message_id, m.trace_id, m.parent_id, repr(m.content))
                for e in run["env"].router.trace.events()
                for m in (e.message,)
            ]
            for run in (default, sharded)
        ]
        assert fingerprint[0] == fingerprint[1]

    def test_sharded_merge_matches_serial(self):
        serial = run_many_cases(cases=8, containers=2, tracing=False)
        merged = run_many_cases(
            cases=8, containers=2, tracing=False, shards=3
        )
        assert merged["sharded"] == 3
        assert merged["completed"] == 8
        assert sum(s["cases"] for s in merged["shards"]) == 8
        for mine, theirs in zip(merged["outcomes"], serial["outcomes"]):
            assert mine["status"] == theirs["status"] == "completed"
            assert mine["data"] == theirs["data"]
            assert mine["activities_run"] == theirs["activities_run"]
        assert merged["env"] is None and merged["services"] is None

    def test_shards_and_parallel_are_exclusive(self):
        with pytest.raises(WorkloadError):
            run_many_cases(cases=4, shards=2, parallel=2)

    def test_case_indices_must_match_cases(self):
        with pytest.raises(WorkloadError):
            run_many_cases(cases=3, case_indices=[0, 1])

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        class Boom:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool for you")

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", Boom
        )
        result = run_many_cases(
            cases=4, containers=2, tracing=False, shards=2
        )
        assert result["completed"] == 4
        assert "no pool for you" in result["pool_error"]
