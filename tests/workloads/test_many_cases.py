"""The many_cases enactment workload and the throughput fast paths."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import many_cases_process, run_many_cases


CASES = 4


@pytest.fixture(scope="module")
def default_run():
    return run_many_cases(cases=CASES, containers=2)


class TestWorkload:
    def test_all_cases_complete(self, default_run):
        assert default_run["completed"] == CASES
        assert all(o["status"] == "completed" for o in default_run["outcomes"])

    def test_activity_count(self, default_run):
        # ingest + 3 fork parts + 3 refine rounds + 1 publish = 8 per case.
        assert default_run["activities_run"] == 8 * CASES

    def test_publish_route_alternates(self, default_run):
        outs = [o["data"]["out"] for o in default_run["outcomes"]]
        assert [("Archived" in props) for props in outs] == [
            i % 2 != 0 for i in range(CASES)
        ]

    def test_loop_runs_requested_rounds(self, default_run):
        for outcome in default_run["outcomes"]:
            assert (
                sum(1 for e in outcome["events"] if e[1] == "loop-done") == 1
            )
            (loop_done,) = [e for e in outcome["events"] if e[1] == "loop-done"]
            assert loop_done[2] == "3 iterations"

    def test_rejects_zero_cases(self):
        with pytest.raises(WorkloadError):
            run_many_cases(cases=0)

    def test_process_is_well_structured(self):
        from repro.process import process_to_ast

        assert process_to_ast(many_cases_process()) is not None


class TestProgramCache:
    def test_shared_compilation_across_cases(self, default_run):
        counters = default_run["counters"]
        assert counters["program_cache_miss"] == 1
        assert counters["program_cache_hit"] == CASES - 1

    def test_cache_disabled_still_completes_identically(self, default_run):
        uncached = run_many_cases(cases=CASES, containers=2, program_cache_size=0)
        assert uncached["counters"]["program_cache_hit"] == 0
        assert uncached["counters"]["program_cache_miss"] == 0
        # Byte-identical enactment: same events at the same times.
        assert [o["events"] for o in uncached["outcomes"]] == [
            o["events"] for o in default_run["outcomes"]
        ]


class TestRouterFastPath:
    def test_tracing_off_same_enactment(self, default_run):
        fast = run_many_cases(cases=CASES, containers=2, tracing=False)
        assert fast["messages"] == 0  # nothing recorded...
        assert (
            fast["counters"]["messages_delivered"]
            == default_run["counters"]["messages_delivered"]
        )  # ...but everything delivered
        assert [o["events"] for o in fast["outcomes"]] == [
            o["events"] for o in default_run["outcomes"]
        ]


class TestCandidateCache:
    def test_cache_hits_and_saved_messages(self, default_run):
        cached = run_many_cases(cases=CASES, containers=2, match_cache_ttl=300.0)
        counters = cached["counters"]
        assert counters["match_cache_hit"] > 0
        assert (
            counters["messages_sent"] < default_run["counters"]["messages_sent"]
        )
        assert cached["completed"] == CASES

    def test_registry_change_invalidates(self):
        result = run_many_cases(cases=2, containers=2, match_cache_ttl=1e9)
        services = result["services"]
        matchmaker = services.matchmaking
        assert matchmaker._candidate_cache  # warm after the run
        from repro.services.brokerage import ContainerAd

        services.brokerage.advertise(
            ContainerAd("ac-new", "siteA", ["ingest"], 1.0, 0.0)
        )
        result["env"].run()  # deliver the registry-changed push
        assert not matchmaker._candidate_cache
