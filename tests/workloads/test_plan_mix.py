"""The plan_mix workload: repeated-goal planning traffic for the library."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import run_plan_mix
from repro.workloads.plan_mix import plan_mix_goals, plan_mix_problem

FAST = dict(
    population_size=24, generations=4, smax=12, containers=2
)


@pytest.fixture(scope="module")
def warm_run():
    return run_plan_mix(requests=10, distinct=4, **FAST)


class TestWarmRun:
    def test_every_request_answered(self, warm_run):
        assert len(warm_run["replies"]) == 10
        assert len(warm_run["latencies"]) == 10
        assert all(latency > 0.0 for latency in warm_run["latencies"])

    def test_ladder_shape(self, warm_run):
        sources = warm_run["sources"]
        # First request of a cold library is the one honest miss; later
        # first-occurrences overlap earlier goal variants and plan as
        # seeds; every repeat is a verified hit.
        assert sources[0] == "miss"
        assert set(sources[1:4]) == {"seed"}
        assert sources[4:] == ["hit"] * 6

    def test_counters_match_sources(self, warm_run):
        counts = warm_run["counts"]
        assert counts["miss"] == 1
        assert counts["seed"] == 3
        assert counts["hit"] == 6
        assert counts["repair"] == 0
        assert counts["store"] == 4
        assert counts["verify"] == 6
        assert warm_run["library_entries"] == 4

    def test_hits_replay_the_stored_plan(self, warm_run):
        schedule, replies = warm_run["schedule"], warm_run["replies"]
        firsts = {}
        for variant, reply in zip(schedule, replies):
            if variant not in firsts:
                firsts[variant] = reply
            elif reply["source"] == "hit":
                assert reply["plan"] == firsts[variant]["plan"]
                assert reply["generations"] == 0


def test_kill_after_exercises_repair():
    # Default GP budget: the variant-0 plan must actually publish for the
    # kill to land on a used service.
    result = run_plan_mix(requests=8, distinct=2, kill_after=4, containers=2)
    assert result["killed"] in ("publish", "publish_backup")
    assert result["counts"]["repair"] >= 1
    assert "repair" in result["sources"]
    # A repaired plan never uses the killed publisher again.
    for reply in result["replies"]:
        if reply["source"] == "repair":
            assert result["killed"] not in reply["plan"].activities()


def test_library_off_runs_plain_gp():
    result = run_plan_mix(requests=4, distinct=2, library="off", **FAST)
    assert result["sources"] == [None] * 4
    assert all(count == 0 for count in result["counts"].values())
    assert result["library_entries"] == 0


def test_wired_disabled_library_is_bit_identical_to_unwired():
    plain = run_plan_mix(requests=4, distinct=2, library="off", **FAST)
    wired = run_plan_mix(
        requests=4,
        distinct=2,
        library="off",
        wire_disabled_library=True,
        **FAST,
    )
    assert wired["fitness"] == plain["fitness"]
    assert wired["sources"] == plain["sources"]
    assert wired["messages"] == plain["messages"]
    assert wired["makespan"] == plain["makespan"]


def test_goal_variants_cycle_and_share_digest():
    assert plan_mix_goals(0) == plan_mix_goals(4)
    from repro.planner.library import problem_digest

    digests = {problem_digest(plan_mix_problem(v)) for v in range(4)}
    assert len(digests) == 1  # one activity set T, four goal variants


def test_rejects_degenerate_inputs():
    with pytest.raises(WorkloadError):
        run_plan_mix(requests=0)
    with pytest.raises(WorkloadError):
        run_plan_mix(requests=2, distinct=0)


def test_enact_mode_records_journaled_cases():
    """Enactment mode drives each planned process through coordination;
    with the journal on, each case carries its plan event and the
    library source comes from the journal, not the enactment reply."""
    result = run_plan_mix(
        requests=4, distinct=2, enact=True, journal=True, spans=True, **FAST
    )
    assert result["completed"] == 4
    assert result["fitness"] == []
    stats = result["journal"]
    assert stats["appended"] == stats["flushed"] > 0
    assert all(source is not None for source in result["sources"])
    assert result["sources"][0] == "miss"  # cold library, first variant
    # repeats of a variant are verified hits
    assert set(result["sources"][2:]) <= {"hit", "repair", "seed"}
