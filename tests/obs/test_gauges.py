"""Sim-time gauge sampling."""

import pytest

from repro.errors import ObservabilityError
from repro.grid.environment import GridEnvironment
from repro.obs.gauges import GaugeSampler


class TestGaugeSampler:
    def test_rejects_non_positive_period(self):
        env = GridEnvironment()
        with pytest.raises(ObservabilityError):
            GaugeSampler(env, period=0.0)

    def test_samples_nodes_and_mailboxes(self):
        env = GridEnvironment()
        env.add_node("n1", "siteA", slots=4)
        sampler = env.attach_gauges(period=1.0)

        def busywork():
            grant = yield env.node("n1").slots.acquire()
            yield 3.5
            env.node("n1").slots.release(grant)

        env.engine.spawn(busywork(), "worker")
        env.run()
        assert sampler.samples_taken >= 3
        summary = sampler.summary()
        series = summary["node.n1.slots_in_use"]
        assert series["max"] == 1.0
        assert 0.0 < series["time_average"] <= 1.0
        assert "spans.open" in summary
        assert "transfers.inflight" in summary

    def test_auto_stops_when_queue_drains(self):
        """env.run() must terminate: the sampler stops itself on idle."""
        env = GridEnvironment()
        env.attach_gauges(period=1.0)
        env.run()  # would never return if the sampler rescheduled forever
        assert env.gauges.running is False
        # new work + start() resumes sampling
        def noop():
            yield 0.5

        env.engine.spawn(noop(), "noop")
        before = env.gauges.samples_taken
        env.attach_gauges(period=1.0)
        env.run()
        assert env.gauges.samples_taken >= before

    def test_attach_is_idempotent(self):
        env = GridEnvironment()
        first = env.attach_gauges()
        assert env.attach_gauges() is first

    def test_stop_halts_sampling(self):
        env = GridEnvironment()
        sampler = env.attach_gauges(period=1.0)

        def sleeper():
            yield 10.0

        env.engine.spawn(sleeper(), "sleeper")
        sampler.stop()
        env.run()
        assert sampler.samples_taken == 0

    def test_open_transfer_spans_counted_inflight(self):
        env = GridEnvironment(spans=True)
        span = env.spans.start("d1", "transfer", agent="ac1")
        env.gauges = None
        sampler = GaugeSampler(env)
        sampler.sample()
        assert sampler.metrics.series["transfers.inflight"].values[-1] == 1.0
        env.spans.end(span)
        sampler.sample()
        assert sampler.metrics.series["transfers.inflight"].values[-1] == 0.0
