"""Unit tests for the provenance graph (`repro.obs.provenance`)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.journal import CaseJournal, JournalEvent
from repro.obs.provenance import (
    ProvenanceGraph,
    lineage_jsonl,
    provenance_dot,
    span_agreement,
)
from repro.sim.engine import Engine


def _event(seq, case, kind, **attrs):
    return JournalEvent(
        seq=seq, case=case, kind=kind, time=float(seq), agent="t",
        trace=f"trace-{case}", attrs=attrs,
    )


def happy_case(case="c1"):
    """intake -> plan -> compile -> dispatch/execute/complete x2 -> done."""
    return [
        _event(0, case, "case-intake", process="p", initial=["src"],
               payload_keys=["src"]),
        _event(1, case, "plan", source="hit", process="p", solved=True,
               fitness=1.0),
        _event(2, case, "compile", process="p", activities=["first", "second"],
               choices=0, loops=0),
        _event(3, case, "dispatch", activity="first", service="svc_a",
               container="ac1", inputs=["src"], attempt=0),
        _event(4, case, "execute", activity="first", service="svc_a",
               node="n1", container="ac1", inputs=["src"]),
        _event(5, case, "transfer", data="src", key=f"{case}/src",
               direction="fetch", node="n1"),
        _event(6, case, "transfer", data="mid", key=f"{case}/mid",
               direction="store", node="n1"),
        _event(7, case, "activity-complete", activity="first",
               service="svc_a", container="ac1", outputs=["mid"],
               payload_keys={"mid": f"{case}/mid"}, retries=0),
        _event(8, case, "dispatch", activity="second", service="svc_b",
               container="ac2", inputs=["mid"], attempt=0),
        _event(9, case, "execute", activity="second", service="svc_b",
               node="n2", container="ac2", inputs=["mid"]),
        _event(10, case, "activity-complete", activity="second",
               service="svc_b", container="ac2", outputs=["out"],
               payload_keys={"out": f"{case}/out"}, retries=0),
        _event(11, case, "case-complete", activities_run=2, replans=0),
    ]


class TestGraphBuilding:
    def test_happy_path_statuses_and_edges(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        runs = {run.name: run for run in graph.activities.values()}
        assert runs["first"].status == "completed"
        assert runs["first"].node == "n1"
        assert runs["first"].container == "ac1"
        assert runs["second"].status == "completed"
        assert set(graph.data) == {"c1:src", "c1:mid", "c1:out"}
        assert graph.data["c1:src"].initial is True
        assert graph.data["c1:mid"].initial is False
        # first consumed src, produced mid; second consumed mid
        assert graph.data["c1:mid"].producers == [runs["first"].id]
        assert graph.data["c1:mid"].consumers == [runs["second"].id]

    def test_compile_preseeds_pending_runs(self):
        events = happy_case()[:3]  # stop after compile
        graph = ProvenanceGraph.from_events("c1", events)
        statuses = {run.name: run.status for run in graph.activities.values()}
        assert statuses == {"first": "pending", "second": "pending"}

    def test_undispatched_branch_stays_pending(self):
        events = [e for e in happy_case() if e.attrs.get("activity") != "second"]
        graph = ProvenanceGraph.from_events("c1", events)
        statuses = {run.name: run.status for run in graph.activities.values()}
        assert statuses["first"] == "completed"
        assert statuses["second"] == "pending"

    def test_replan_keeps_failed_run_and_new_occurrence(self):
        case = "c1"
        events = happy_case()[:4] + [
            _event(20, case, "activity-fail", activity="first",
                   service="svc_a", reason="node-lost"),
            _event(21, case, "replan", round=1, excluded=["first"],
                   aborted="first"),
            _event(22, case, "compile", process="p",
                   activities=["first", "second"], choices=0, loops=0),
            _event(23, case, "dispatch", activity="first", service="svc_a2",
                   container="ac2", inputs=["src"], attempt=0),
            _event(24, case, "activity-complete", activity="first",
                   service="svc_a2", container="ac2", outputs=["mid"],
                   payload_keys={"mid": "c1/mid"}, retries=0),
        ]
        graph = ProvenanceGraph.from_events("c1", events)
        first_runs = [
            run for run in graph.activities.values() if run.name == "first"
        ]
        assert sorted(run.status for run in first_runs) == [
            "completed", "failed",
        ]
        failed = next(run for run in first_runs if run.status == "failed")
        assert failed.error == "node-lost"
        # the replan round itself stays visible in the raw timeline
        replans = [
            entry for entry in graph.case_timeline(case)
            if entry["kind"] == "replan"
        ]
        assert len(replans) == 1
        assert replans[0]["attrs"]["aborted"] == "first"

    def test_case_timeline_orders_by_seq_and_rejects_unknown(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        timeline = graph.case_timeline("c1")
        assert [entry["kind"] for entry in timeline][:3] == [
            "case-intake", "plan", "compile",
        ]
        with pytest.raises(ObservabilityError):
            graph.case_timeline("missing")


class TestQueries:
    def test_lineage_walks_backward(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        result = graph.lineage("out", case="c1")
        names = {a["name"] for a in result["activities"]}
        data = {d["name"] for d in result["data"]}
        assert names == {"first", "second"}
        assert data == {"src", "mid", "out"}
        assert result["edges"]

    def test_lineage_resolves_payload_key(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        result = graph.lineage("c1/out")
        assert result["target"] == "c1:out"

    def test_lineage_unknown_key_raises(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        with pytest.raises(ObservabilityError):
            graph.lineage("nonexistent")

    def test_descendants_walks_forward(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        result = graph.descendants("first", case="c1")
        names = {a["name"] for a in result["activities"]}
        data = {d["name"] for d in result["data"]}
        assert names == {"first", "second"}
        assert "out" in data
        assert "src" not in data  # src is upstream of first

    def test_to_json_is_serialisable_and_case_scoped(self):
        graph = ProvenanceGraph()
        graph.add_events("c1", happy_case("c1"))
        graph.add_events("c2", happy_case("c2"))
        payload = graph.to_json(case="c1")
        json.dumps(payload)  # must be plain data
        assert all(a["case"] == "c1" for a in payload["activities"])
        both = graph.to_json()
        assert {a["case"] for a in both["activities"]} == {"c1", "c2"}

    def test_to_dot_and_lineage_jsonl(self):
        graph = ProvenanceGraph.from_events("c1", happy_case())
        dot = graph.to_dot(case="c1")
        assert dot.startswith("digraph provenance")
        assert "lightgreen" in dot  # completed activities
        result = graph.lineage("out", case="c1")
        lines = lineage_jsonl(result).splitlines()
        assert all(json.loads(line) for line in lines)
        dot2 = provenance_dot(
            result["activities"], result["data"], result["edges"]
        )
        assert "doublecircle" in dot2  # initial data node


class TestSpanAgreement:
    def test_agreement_against_matching_recorder(self):
        from repro.obs.spans import SpanRecorder

        engine = Engine()
        recorder = SpanRecorder(engine, enabled=True)
        events = happy_case()
        trace = events[0].trace
        for kind, name in [
            ("case", "c1"), ("plan", "p"), ("compile", "p"),
            ("activity", "first"), ("execute", "first"),
            ("activity", "second"), ("execute", "second"),
            ("storage", "src"),  # covers the transfer events
        ]:
            span = recorder.start(name, kind, trace_id=trace)
            recorder.end(span)
        report = span_agreement(events, recorder)
        assert report["checkable"] > 0
        assert report["agreement"] == 1.0
        assert report["mismatches"] == []

    def test_disagreement_reported(self):
        from repro.obs.spans import SpanRecorder

        engine = Engine()
        recorder = SpanRecorder(engine, enabled=True)  # no spans at all
        report = span_agreement(happy_case(), recorder)
        assert report["agreement"] < 1.0
        assert report["mismatches"]

    def test_journal_without_checkable_events_agrees_trivially(self):
        from repro.obs.spans import SpanRecorder

        journal = CaseJournal(Engine(), enabled=True)
        recorder = SpanRecorder(Engine(), enabled=True)
        report = span_agreement([], recorder)
        assert report["agreement"] == 1.0
        assert report["checkable"] == 0
        assert journal.stats()["appended"] == 0
