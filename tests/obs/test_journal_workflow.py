"""Integration: the case journal against live enactments.

Covers the flight-recorder acceptance properties — journal-vs-span
agreement on real workloads (standard, sharded, and failing grids),
storage mirroring and post-hoc replay, and the byte-identity guarantee
of the disabled/record-only modes.
"""

import pytest

from repro.errors import ObservabilityError, ServiceError
from repro.obs.journal import JOURNAL_KEY_PREFIX, journal_storage_key
from repro.obs.provenance import (
    ProvenanceGraph,
    journal_replay,
    span_agreement,
)
from repro.planner import GPConfig
from repro.services import sharded_environment, standard_environment
from repro.virolab import planning_problem, process_description
from repro.workloads.many_cases import (
    many_cases_initial_data,
    many_cases_process,
    many_cases_services,
    run_many_cases,
)
from tests.services.conftest import drive, synthetic_services

AGREEMENT_FLOOR = 0.95


def _enact(env, services, cases, rounds=2):
    process = many_cases_process(rounds)
    outcomes = [None] * cases

    def enact_case(index):
        reply = yield from services.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": process,
                "initial_data": many_cases_initial_data(index),
                "task": f"case-{index}",
            },
        )
        outcomes[index] = reply

    for index in range(cases):
        env.engine.spawn(enact_case(index), name=f"user-{index}")
    env.run(max_events=2_000_000)
    return outcomes


class TestWorkloadJournal:
    def test_disabled_journal_records_nothing(self):
        result = run_many_cases(cases=4, containers=2)
        stats = result["journal"]
        assert stats["enabled"] is False
        assert stats["appended"] == 0
        assert stats["cases"] == 0

    def test_record_mode_keeps_storage_clean(self):
        result = run_many_cases(cases=4, containers=2, journal="record")
        assert result["journal"]["appended"] > 0
        assert result["journal"]["flushed"] == 0
        journal_keys = [
            key
            for key in result["services"].storage.keys()
            if key.startswith(JOURNAL_KEY_PREFIX)
        ]
        assert journal_keys == []

    def test_mirror_mode_flushes_and_replays_every_case(self):
        cases = 6
        result = run_many_cases(
            cases=cases, containers=3, journal=True, spans=True
        )
        env, services = result["env"], result["services"]
        stats = result["journal"]
        assert stats["appended"] == stats["flushed"] > 0
        for index in range(cases):
            case_id = f"case-{index}"
            assert services.storage.get(journal_storage_key(case_id))
            replay = journal_replay(
                services.storage, case_id, recorder=env.spans
            )
            assert replay["case"] == case_id
            assert replay["activities"] > 0
            assert replay["agreement"]["agreement"] >= AGREEMENT_FLOOR
            runs = replay["graph"].activities.values()
            assert any(run.status == "completed" for run in runs)

    def test_replay_of_unknown_case_raises(self):
        result = run_many_cases(cases=2, containers=2, journal=True)
        with pytest.raises(ObservabilityError):
            journal_replay(result["services"].storage, "no-such-case")


class TestShardedJournal:
    def test_sharded_grid_journal_agrees_with_spans(self):
        cases = 6
        grid = sharded_environment(
            many_cases_services(),
            shards=2,
            containers=3,
            journal=True,
            spans=True,
        )
        outcomes = _enact(grid.env, grid.services, cases)
        assert all(
            outcome and outcome["status"] == "completed"
            for outcome in outcomes
        )
        journal = grid.env.journal
        assert journal.stats()["cases"] == cases
        for index in range(cases):
            case_id = f"case-{index}"
            events = journal.events(case_id)
            assert events, f"no journal for {case_id}"
            # shard routing recorded at intake
            intake = events[0]
            assert intake.kind == "case-intake"
            report = span_agreement(events, grid.env.spans)
            assert report["agreement"] >= AGREEMENT_FLOOR
            # mirrored blob replays to the same event count
            replay = journal_replay(grid.services.storage, case_id)
            assert replay["events"] == len(events)


class TestFailureJournal:
    def test_replan_recorded_and_aborted_activity_not_lost(self):
        # Mirror the replanning suite's recipe: scan seeds for a run
        # that actually replans under heavy Bernoulli failures.
        for seed in range(6):
            env, services, _ = standard_environment(
                synthetic_services(),
                containers=3,
                failure_probability=0.4,
                failure_seed=seed,
                planner_config=GPConfig(population_size=30, generations=5),
                planner_seed=seed,
                journal=True,
                spans=True,
            )
            request = {
                "process": process_description(),
                "initial_data": {
                    "D1": {"Classification": "POD-Parameter"},
                    "D2": {"Classification": "P3DR-Parameter"},
                    "D3": {"Classification": "P3DR-Parameter"},
                    "D4": {"Classification": "P3DR-Parameter"},
                    "D5": {"Classification": "POR-Parameter"},
                    "D6": {"Classification": "PSF-Parameter"},
                    "D7": {"Classification": "2D Image"},
                },
                "task": "case",
                "problem": planning_problem(),
            }
            try:
                result = drive(
                    env,
                    services.coordination,
                    lambda: services.coordination.call(
                        "coordination", "execute-task", request
                    ),
                    max_events=5_000_000,
                )
            except ServiceError:
                continue
            if result.get("replans", 0) < 1:
                continue

            events = env.journal.events("case")
            kinds = [event.kind for event in events]
            replans = [e for e in events if e.kind == "replan"]
            assert len(replans) == result["replans"]
            aborted = replans[0].attrs["aborted"]
            # the aborted activity run survives as a failed node
            graph = ProvenanceGraph.from_journal(env.journal, "case")
            aborted_runs = [
                run
                for run in graph.activities.values()
                if run.name == aborted
            ]
            assert any(run.status == "failed" for run in aborted_runs)
            # failure did not corrupt the journal/span agreement
            report = span_agreement(events, env.spans)
            assert report["agreement"] >= AGREEMENT_FLOOR
            assert kinds[-1] == "case-complete"
            return
        pytest.skip("no seed in range produced a replanning run")
