"""Span recorder lifecycle, accounting, and watch rules."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import Alert, SpanRecorder, WatchRule
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def recorder(engine):
    return SpanRecorder(engine, enabled=True)


class TestLifecycle:
    def test_disabled_start_returns_none(self, engine):
        recorder = SpanRecorder(engine, enabled=False)
        assert recorder.start("x", "case") is None
        recorder.end(None)  # no-op, no error
        assert recorder.total_started == 0
        assert recorder.total_closed == 0

    def test_open_close_pairing(self, engine, recorder):
        span = recorder.start("case-0", "case", agent="coordination")
        assert not span.closed
        assert span.duration == 0.0
        assert recorder.open_count == 1
        engine.now = 4.0
        recorder.end(span)
        assert span.closed
        assert span.start == 0.0 and span.end == 4.0
        assert span.duration == 4.0
        assert recorder.open_count == 0
        assert recorder.total_started == recorder.total_closed == 1

    def test_double_close_raises(self, recorder):
        span = recorder.start("x", "case")
        recorder.end(span)
        with pytest.raises(ObservabilityError, match="closed twice"):
            recorder.end(span)

    def test_parent_nesting_and_trace_inheritance(self, engine, recorder):
        root = recorder.start("case-0", "case", trace_id="trace-7")
        child = recorder.start("plan", "plan", parent=root)
        grandchild = recorder.start("gp", "gp", parent=child)
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        # trace_id flows down unless overridden
        assert child.trace_id == "trace-7"
        assert grandchild.trace_id == "trace-7"
        own = recorder.start("other", "plan", parent=root, trace_id="trace-9")
        assert own.trace_id == "trace-9"
        for span in (grandchild, child, own, root):
            recorder.end(span)
        tree = list(recorder.tree(root))
        assert [(d, s.name) for d, s in tree] == [
            (0, "case-0"), (1, "plan"), (2, "gp"), (1, "other"),
        ]

    def test_status_and_attrs_on_end(self, recorder):
        span = recorder.start("a", "activity", service="POD")
        recorder.end(span, status="error", retries=2)
        assert span.status == "error"
        assert span.attrs == {"service": "POD", "retries": 2}
        as_dict = span.as_dict()
        assert as_dict["status"] == "error"
        assert as_dict["attrs"]["retries"] == 2

    def test_eviction_accounting_under_bounded_capacity(self, engine):
        recorder = SpanRecorder(engine, enabled=True, capacity=3)
        spans = [recorder.start(f"s{i}", "case") for i in range(10)]
        for span in spans:
            recorder.end(span)
        assert len(recorder.closed) == 3
        assert recorder.total_started == 10
        assert recorder.total_closed == 10
        assert recorder.evicted == 7
        # the resident window holds the newest spans
        assert [s.name for s in recorder.closed] == ["s7", "s8", "s9"]

    def test_bad_capacity_rejected(self, engine):
        with pytest.raises(ObservabilityError):
            SpanRecorder(engine, capacity=0)

    def test_queries_and_kinds(self, recorder):
        a = recorder.start("a", "case", trace_id="t1")
        b = recorder.start("b", "activity", trace_id="t1")
        c = recorder.start("c", "activity", trace_id="t2")
        for span in (a, b, c):
            recorder.end(span)
        assert [s.name for s in recorder.spans(trace_id="t1")] == ["a", "b"]
        assert [s.name for s in recorder.spans(kind="activity")] == ["b", "c"]
        assert [s.name for s in recorder.spans(name="c")] == ["c"]
        assert recorder.kinds() == ["case", "activity"]

    def test_open_spans_filter(self, recorder):
        recorder.start("t", "transfer")
        recorder.start("c", "compute")
        assert len(recorder.open_spans()) == 2
        assert [s.name for s in recorder.open_spans(kind="transfer")] == ["t"]

    def test_clear_resets_accounting(self, recorder):
        recorder.end(recorder.start("x", "case"))
        recorder.clear()
        assert recorder.total_started == 0
        assert recorder.total_closed == 0
        assert len(recorder.closed) == 0

    def test_mid_run_disable_still_closes_open_spans(self, engine, recorder):
        span = recorder.start("x", "case")
        recorder.enabled = False
        assert recorder.start("y", "case") is None
        recorder.end(span)  # opened while enabled: closes normally
        assert recorder.total_closed == 1


class TestWatchRules:
    def test_unknown_op_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown op"):
            WatchRule("bad", "duration", 1.0, op="!=")

    def test_duration_rule_fires_on_close(self, engine, recorder):
        recorder.add_rule(WatchRule("slow", "duration", 5.0, kind="activity"))
        slow = recorder.start("a1", "activity", trace_id="t1")
        fast = recorder.start("a2", "activity")
        other = recorder.start("c", "compute")
        engine.now = 10.0
        recorder.end(slow)
        assert recorder.total_alerts == 1
        engine.now = 12.0
        recorder.end(fast)  # duration 12 > 5 -> fires too
        recorder.end(other)  # wrong kind: never fires
        assert recorder.total_alerts == 2
        alert = recorder.alerts[0]
        assert isinstance(alert, Alert)
        assert alert.rule == "slow" and alert.span_name == "a1"
        assert alert.value == 10.0 and alert.trace_id == "t1"
        assert alert.as_dict()["kind"] == "activity"

    def test_attribute_rule_skips_missing_and_non_numeric(self, recorder):
        recorder.add_rule(WatchRule("retries", "retries", 1.0, op=">="))
        recorder.end(recorder.start("a", "activity"))  # attr missing
        recorder.end(recorder.start("b", "activity", retries="two"))  # non-numeric
        recorder.end(recorder.start("c", "activity", retries=True))  # bool ignored
        assert recorder.total_alerts == 0
        recorder.end(recorder.start("d", "activity", retries=2))
        assert recorder.total_alerts == 1

    def test_all_operators(self, recorder):
        for op, bound, value, fires in [
            (">", 1.0, 2.0, True), (">=", 2.0, 2.0, True),
            ("<", 3.0, 2.0, True), ("<=", 1.0, 2.0, False),
            ("==", 2.0, 2.0, True),
        ]:
            recorder.rules = [WatchRule("r", "v", bound, op=op)]
            before = recorder.total_alerts
            recorder.end(recorder.start("x", "k", v=value))
            assert (recorder.total_alerts > before) is fires, (op, bound, value)

    def test_duplicate_rule_name_rejected(self, recorder):
        recorder.add_rule(WatchRule("r", "duration", 1.0))
        with pytest.raises(ObservabilityError, match="duplicate"):
            recorder.add_rule(WatchRule("r", "duration", 2.0))

    def test_remove_rule(self, recorder):
        recorder.add_rule(WatchRule("r", "duration", 1.0))
        assert recorder.remove_rule("r") is True
        assert recorder.remove_rule("r") is False

    def test_alert_ring_is_bounded(self, engine):
        recorder = SpanRecorder(engine, enabled=True, alert_capacity=2)
        recorder.add_rule(WatchRule("r", "v", 0.0))
        for i in range(5):
            recorder.end(recorder.start(f"s{i}", "k", v=float(i + 1)))
        assert recorder.total_alerts == 5
        assert [a.span_name for a in recorder.alerts] == ["s3", "s4"]
