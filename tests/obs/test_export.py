"""Chrome trace-event and JSONL exporters: round-trip + schema."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    chrome_trace,
    spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Engine


@pytest.fixture
def recorder():
    engine = Engine()
    recorder = SpanRecorder(engine, enabled=True)
    root = recorder.start("case-0", "case", agent="coordination", trace_id="t1")
    child = recorder.start(
        "ingest", "activity", agent="coordination", parent=root, service="ingest"
    )
    engine.now = 2.5
    recorder.end(child, retries=0)
    remote = recorder.start("ingest", "execute", agent="ac1", trace_id="t1")
    engine.now = 3.0
    recorder.end(remote)
    recorder.end(root)
    return recorder


class TestChromeTrace:
    def test_schema_and_event_count(self, recorder):
        document = chrome_trace(recorder)
        assert validate_chrome_trace(document) == 3
        assert document["displayTimeUnit"] == "ms"

    def test_metadata_names_agents(self, recorder):
        events = chrome_trace(recorder)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"coordination", "ac1"}
        assert all(e["name"] == "thread_name" for e in meta)

    def test_microsecond_timestamps_and_identity_args(self, recorder):
        events = chrome_trace(recorder)["traceEvents"]
        child = next(e for e in events if e.get("cat") == "activity")
        assert child["ts"] == 0.0
        assert child["dur"] == pytest.approx(2.5e6)
        assert child["args"]["trace_id"] == "t1"
        assert child["args"]["parent_id"] is not None
        assert child["args"]["service"] == "ingest"

    def test_agents_map_to_distinct_tids_same_pid(self, recorder):
        events = [
            e for e in chrome_trace(recorder)["traceEvents"] if e["ph"] == "X"
        ]
        assert len({e["pid"] for e in events}) == 1
        by_agent = {}
        for e in events:
            by_agent.setdefault(e["tid"], set()).add(e["args"]["span_id"])
        assert len(by_agent) == 2  # coordination + ac1 swimlanes

    def test_file_round_trip(self, recorder, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, recorder)
        document = json.loads(path.read_text())
        assert count == len(document["traceEvents"])
        assert validate_chrome_trace(document) == 3


class TestValidation:
    def test_rejects_non_document(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace([])
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ObservabilityError, match="phase"):
            validate_chrome_trace({"traceEvents": [{"ph": "B"}]})

    def test_rejects_missing_fields(self):
        event = {"name": "x", "cat": "k", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1}
        with pytest.raises(ObservabilityError, match="tid"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_negative_duration(self):
        event = {
            "name": "x", "cat": "k", "ph": "X",
            "ts": 0.0, "dur": -1.0, "pid": 1, "tid": 1,
        }
        with pytest.raises(ObservabilityError, match="dur"):
            validate_chrome_trace({"traceEvents": [event]})


class TestJsonl:
    def test_round_trip_preserves_span_dicts(self, recorder):
        lines = list(spans_jsonl(recorder))
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["ingest", "ingest", "case-0"]
        assert parsed[0]["kind"] == "activity"
        assert parsed[0]["duration"] == pytest.approx(2.5)
        assert parsed[2]["trace_id"] == "t1"

    def test_write_jsonl(self, recorder, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = write_jsonl(path, recorder)
        assert count == 3
        assert len(path.read_text().splitlines()) == 3
