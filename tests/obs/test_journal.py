"""Unit tests for the case flight recorder (`repro.obs.journal`)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    CaseJournal,
    decode_events,
    encode_events,
    journal_storage_key,
)
from repro.sim.engine import Engine


def make_journal(enabled=True, mirror=False, max_cases=4096):
    return CaseJournal(Engine(), enabled=enabled, mirror=mirror, max_cases=max_cases)


class TestRecording:
    def test_disabled_by_default_records_nothing(self):
        journal = CaseJournal(Engine())
        assert journal.enabled is False
        assert journal.append("c1", "case-intake") is None
        journal.bind("t-1", "c1")
        assert journal.append_traced("t-1", "execute") is None
        assert journal.events("c1") == []
        stats = journal.stats()
        assert stats["appended"] == 0
        assert stats["cases"] == 0
        assert stats["unbound_dropped"] == 0

    def test_append_orders_events_with_global_seq(self):
        journal = make_journal()
        journal.append("c1", "case-intake", agent="coord")
        journal.append("c2", "case-intake", agent="coord")
        journal.append("c1", "dispatch", agent="coord", activity="a")
        events = journal.events("c1")
        assert [e.kind for e in events] == ["case-intake", "dispatch"]
        assert events[0].seq < events[1].seq
        assert journal.total_appended == 3
        # LRU order: the append to c1 refreshed it past c2
        assert journal.case_ids() == ("c2", "c1")

    def test_bind_resolves_traced_appends_and_backfills_trace(self):
        journal = make_journal()
        journal.bind("trace-9", "c1")
        journal.append("c1", "case-intake", trace_id="trace-9")
        # trace omitted -> auto-filled from the intake binding
        event = journal.append("c1", "dispatch", activity="a")
        assert event.trace == "trace-9"
        remote = journal.append_traced("trace-9", "execute", agent="ac1", node="n1")
        assert remote.case == "c1"
        assert remote.attrs["node"] == "n1"
        assert journal.case_for_trace("trace-9") == "c1"
        assert journal.trace_for_case("c1") == "trace-9"

    def test_unbound_traced_append_is_dropped_and_counted(self):
        journal = make_journal()
        assert journal.append_traced("nope", "execute") is None
        assert journal.unbound_dropped == 1
        assert journal.stats()["unbound_dropped"] == 1


class TestRetention:
    def test_lru_eviction_exact_accounting(self):
        journal = make_journal(max_cases=2)
        for case in ("c1", "c2", "c3"):
            journal.append(case, "case-intake")
            journal.append(case, "case-complete")
        assert journal.case_ids() == ("c2", "c3")
        assert journal.cases_evicted == 1
        assert journal.events_evicted == 2
        # c1 was never mirrored: both events are lost
        assert journal.events_lost == 2
        assert journal.total_appended == 6

    def test_appending_refreshes_lru_position(self):
        journal = make_journal(max_cases=2)
        journal.append("c1", "case-intake")
        journal.append("c2", "case-intake")
        journal.append("c1", "dispatch")  # c1 now most-recently-used
        journal.append("c3", "case-intake")
        assert journal.case_ids() == ("c1", "c3")

    def test_flushed_cases_evict_without_loss(self):
        journal = make_journal(max_cases=1)
        journal.append("c1", "case-intake")
        assert journal.mark_flushed("c1") == 1
        journal.append("c2", "case-intake")
        assert journal.events_evicted == 1
        assert journal.events_lost == 0
        assert journal.total_flushed == 1

    def test_purge_drops_cases_but_keeps_counters(self):
        journal = make_journal()
        journal.append("c1", "case-intake")
        journal.append("c2", "case-intake")
        cases, events = journal.purge()
        assert (cases, events) == (2, 2)
        assert journal.case_ids() == ()
        assert journal.total_appended == 2  # history preserved

    def test_clear_resets_everything(self):
        journal = make_journal()
        journal.append("c1", "case-intake")
        journal.clear()
        assert journal.total_appended == 0
        assert journal.case_ids() == ()


class TestMirroring:
    def test_mark_flushed_counts_only_fresh_events(self):
        journal = make_journal()
        journal.append("c1", "case-intake")
        journal.append("c1", "dispatch")
        assert journal.mark_flushed("c1") == 2
        assert journal.pending_flush("c1") == 0
        journal.append("c1", "case-complete")
        assert journal.pending_flush("c1") == 1
        assert journal.mark_flushed("c1") == 1
        assert journal.total_flushed == 3

    def test_absorb_installs_foreign_case_as_flushed(self):
        journal = make_journal()
        journal.append("src", "case-intake", trace_id="t-1")
        blob = journal.encode_case("src")
        case_id, events = decode_events(blob)

        other = make_journal()
        other.absorb(case_id, events)
        assert other.has_case("src")
        assert other.cases_synced == 1
        assert other.pending_flush("src") == 0
        assert other.case_for_trace("t-1") == "src"
        # absorbing twice is a no-op
        other.absorb(case_id, events)
        assert other.cases_synced == 1


class TestEncoding:
    def test_roundtrip_preserves_events(self):
        journal = make_journal()
        journal.bind("t-5", "c1")
        journal.append("c1", "case-intake", initial=["src"], process="p")
        journal.append("c1", "dispatch", activity="a", inputs=["src"], attempt=0)
        blob = encode_events("c1", journal.events("c1"))
        assert isinstance(blob, bytes)
        case_id, events = decode_events(blob)
        assert case_id == "c1"
        assert [e.as_dict() for e in events] == [
            e.as_dict() for e in journal.events("c1")
        ]

    def test_header_carries_schema_and_count(self):
        blob = encode_events("c1", []).decode("utf-8")
        header = blob.split("\n")[0]
        assert f'"schema":{JOURNAL_SCHEMA_VERSION}' in header
        assert '"events":0' in header

    def test_encoding_is_byte_stable(self):
        journal = make_journal()
        journal.append("c1", "case-intake", zeta=1, alpha=2)
        assert journal.encode_case("c1") == journal.encode_case("c1")

    @pytest.mark.parametrize(
        "blob",
        [
            b"",
            b"not json\n",
            b'{"no_schema": true}\n',
            b'{"schema": 999, "case": "c1", "events": 0}\n',
            b'{"schema": 1, "case": "c1", "events": 2}\n{"seq": 0}\n',
        ],
    )
    def test_malformed_blobs_are_rejected(self, blob):
        with pytest.raises(ObservabilityError):
            decode_events(blob)

    def test_storage_key_namespace(self):
        assert journal_storage_key("case-0") == "journal/case-0"
