"""Per-case time-attribution profiles."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.profile import case_profile, interval_union, render_profile
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Engine


class TestIntervalUnion:
    def test_empty(self):
        assert interval_union([]) == 0.0

    def test_disjoint(self):
        assert interval_union([(0.0, 1.0), (2.0, 3.0)]) == 2.0

    def test_overlapping_not_double_counted(self):
        assert interval_union([(0.0, 2.0), (1.0, 3.0)]) == 3.0

    def test_nested(self):
        assert interval_union([(0.0, 10.0), (2.0, 5.0)]) == 10.0


def _build_case(engine, recorder):
    """A synthetic case: [0, 10] root with two overlapping fork children
    and a remote container span joined only by trace_id."""
    root = recorder.start("case-0", "case", agent="coord", trace_id="t1")
    a = recorder.start("partA", "activity", agent="coord", parent=root)
    b = recorder.start("partB", "activity", agent="coord", parent=root)
    remote = recorder.start("partA", "execute", agent="ac1", trace_id="t1")
    engine.now = 4.0
    recorder.end(remote)
    recorder.end(a, retries=1)
    engine.now = 8.0
    recorder.end(b)
    engine.now = 10.0
    recorder.end(root)
    return root


class TestCaseProfile:
    def test_raises_without_case_span(self):
        recorder = SpanRecorder(Engine(), enabled=True)
        with pytest.raises(ObservabilityError, match="spans enabled"):
            case_profile(recorder)

    def test_coverage_clips_and_unions(self):
        engine = Engine()
        recorder = SpanRecorder(engine, enabled=True)
        _build_case(engine, recorder)
        profile = case_profile(recorder, case="case-0")
        # direct children cover [0,4] u [0,8] = 8 of the 10s window
        assert profile["coverage"] == pytest.approx(0.8)
        assert profile["duration"] == pytest.approx(10.0)

    def test_rows_and_activities(self):
        engine = Engine()
        recorder = SpanRecorder(engine, enabled=True)
        _build_case(engine, recorder)
        profile = case_profile(recorder, case="case-0")
        by_kind = {row["kind"]: row for row in profile["rows"]}
        assert by_kind["activity"]["count"] == 2
        assert by_kind["activity"]["total"] == pytest.approx(12.0)
        # the container-side span joins through the shared trace_id
        assert by_kind["execute"]["count"] == 1
        assert by_kind["execute"]["total"] == pytest.approx(4.0)
        assert profile["activities"]["partA"]["retries"] == 1
        assert profile["spans"] == 4  # root + 2 children + 1 remote

    def test_selects_latest_matching_case(self):
        engine = Engine()
        recorder = SpanRecorder(engine, enabled=True)
        first = recorder.start("case-0", "case", trace_id="t1")
        recorder.end(first)
        engine.now = 5.0
        second = recorder.start("case-0", "case", trace_id="t2")
        engine.now = 6.0
        recorder.end(second)
        assert case_profile(recorder, case="case-0")["trace_id"] == "t2"
        assert case_profile(recorder, trace_id="t1")["trace_id"] == "t1"

    def test_zero_duration_root(self):
        recorder = SpanRecorder(Engine(), enabled=True)
        recorder.end(recorder.start("case-0", "case"))
        profile = case_profile(recorder)
        assert profile["coverage"] == 1.0
        assert profile["duration"] == 0.0

    def test_render_is_plain_text_table(self):
        engine = Engine()
        recorder = SpanRecorder(engine, enabled=True)
        _build_case(engine, recorder)
        text = render_profile(case_profile(recorder, case="case-0"))
        assert "case case-0" in text
        assert "coverage=80.0%" in text
        assert "activity" in text and "partA" in text
