"""End-to-end span telemetry over the many-cases workload.

These are the acceptance tests from the observability milestone: spans
stay default-off, a spans-on run pairs every span it opens, the per-case
profile attributes >= 95% of case sim time, and the Chrome export of a
real run validates.
"""

import pytest

from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.profile import case_profile
from repro.workloads import run_many_cases


CASES = 4


@pytest.fixture(scope="module")
def spans_run():
    return run_many_cases(cases=CASES, containers=2, spans=True)


class TestDefaultOff:
    def test_spans_disabled_by_default(self):
        result = run_many_cases(cases=2, containers=2)
        assert result["spans"] == {
            "enabled": False, "started": 0, "closed": 0, "open": 0,
            "evicted": 0,
        }

    def test_enabled_run_same_enactment(self, spans_run):
        plain = run_many_cases(cases=CASES, containers=2)
        assert [o["events"] for o in spans_run["outcomes"]] == [
            o["events"] for o in plain["outcomes"]
        ]
        assert spans_run["messages"] == plain["messages"]
        assert spans_run["makespan"] == plain["makespan"]


class TestAccounting:
    def test_all_spans_paired(self, spans_run):
        accounting = spans_run["spans"]
        assert accounting["enabled"] is True
        assert accounting["started"] > 0
        assert accounting["started"] == accounting["closed"]
        assert accounting["open"] == 0

    def test_one_case_span_per_case(self, spans_run):
        recorder = spans_run["env"].spans
        cases = recorder.spans(kind="case")
        assert len(cases) == CASES
        assert sorted(s.name for s in cases) == [
            f"case-{i}" for i in range(CASES)
        ]
        assert all(s.status == "ok" for s in cases)

    def test_kind_vocabulary_covers_the_pipeline(self, spans_run):
        kinds = set(spans_run["env"].spans.kinds())
        # "plan"/"gp"/"payload"/"storage" need planning or payload cases;
        # those sites are exercised in tests/services instead.
        for expected in (
            "case", "compile", "enact", "activity", "match", "schedule",
            "dispatch", "schedule-eval", "execute", "slot-wait", "compute",
            "fork", "loop", "choice",
        ):
            assert expected in kinds, expected

    def test_spans_carry_the_message_trace_id(self, spans_run):
        recorder = spans_run["env"].spans
        root = recorder.spans(kind="case", name="case-0")[0]
        assert root.trace_id is not None
        joined = recorder.spans(trace_id=root.trace_id)
        # the container-side execute spans join the case through trace_id
        assert any(s.kind == "execute" for s in joined)


class TestProfileCoverage:
    @pytest.mark.parametrize("case", [f"case-{i}" for i in range(CASES)])
    def test_attributes_at_least_95_percent(self, spans_run, case):
        profile = case_profile(spans_run["env"].spans, case=case)
        assert profile["coverage"] >= 0.95

    def test_activity_rows_match_enactment(self, spans_run):
        profile = case_profile(spans_run["env"].spans, case="case-0")
        by_kind = {row["kind"]: row for row in profile["rows"]}
        # ingest + 3 fork parts + 3 refine rounds + 1 publish = 8
        assert by_kind["activity"]["count"] == 8
        assert len(profile["activities"]) > 0


class TestChromeExportOfRealRun:
    def test_export_validates(self, spans_run):
        document = chrome_trace(spans_run["env"].spans)
        events = validate_chrome_trace(document)
        assert events == spans_run["spans"]["closed"]
