"""Shared utilities."""

import numpy as np
import pytest

from repro._util import (
    IdGenerator,
    as_rng,
    indent,
    pairwise,
    stable_unique,
    valid_identifier,
)


class TestIdGenerator:
    def test_per_prefix_counters(self):
        ids = IdGenerator()
        assert ids.next("A") == "A1"
        assert ids.next("A") == "A2"
        assert ids.next("B") == "B1"

    def test_reset(self):
        ids = IdGenerator()
        ids.next("A")
        ids.reset()
        assert ids.next("A") == "A1"


class TestAsRng:
    def test_int_seed_deterministic(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestHelpers:
    def test_pairwise(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]
        assert list(pairwise([1])) == []

    def test_stable_unique(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_indent_skips_empty_lines(self):
        assert indent("a\n\nb") == "  a\n\n  b"

    @pytest.mark.parametrize(
        "name,ok",
        [
            ("POD", True),
            ("P3DR1", True),
            ("PD-3DSD", True),
            ("a_b", True),
            ("9lives", False),
            ("", False),
            ("with space", False),
        ],
    )
    def test_valid_identifier(self, name, ok):
        assert valid_identifier(name) is ok


class TestErrors:
    def test_hierarchy(self):
        from repro import errors

        assert issubclass(errors.ParseError, errors.ProcessError)
        assert issubclass(errors.ProcessError, errors.ReproError)
        assert issubclass(errors.ServiceNotFoundError, errors.ServiceError)
        assert issubclass(errors.ServiceError, errors.GridError)
        assert issubclass(errors.TreeSizeError, errors.PlanError)

    def test_lex_parse_errors_carry_location(self):
        from repro.errors import LexError, ParseError

        err = LexError("bad", line=3, column=7)
        assert (err.line, err.column) == (3, 7)
        err = ParseError("bad", line=1, column=2)
        assert (err.line, err.column) == (1, 2)

    def test_single_catch_all(self):
        from repro.errors import ReproError
        from repro.process import parse_process

        with pytest.raises(ReproError):
            parse_process("not a workflow")
