"""Experiment drivers: tables, figures, ablations (fast configurations)."""

import pytest

from repro.experiments import (
    PAPER_TABLE2,
    baseline_comparison,
    fig1_architecture,
    fig2_planning_protocol,
    fig3_replanning_protocol,
    fig4_to_7_conversions,
    fig8_crossover,
    fig9_mutation,
    fig10_11_case_study,
    fig12_13_ontology,
    replanning_sweep,
    smax_sweep,
    table1,
    table2,
    weight_sweep,
)
from repro.planner import GPConfig

FAST = GPConfig(population_size=30, generations=5)


class TestTables:
    def test_table1_rows(self):
        table = table1()
        rows = dict(zip(table.column("Parameters"), table.column("Values")))
        assert rows["Population Size"] == 200
        assert rows["Smax"] == 40

    def test_table2_small(self):
        result = table2(runs=3, config=FAST, base_seed=0)
        assert len(result.runs) == 3
        assert 0.0 < result.avg_fitness <= 1.0
        assert 0.0 <= result.avg_goal <= 1.0
        assert result.avg_size <= FAST.smax
        rendered = result.table.render()
        assert "Average Fitness" in rendered
        assert str(PAPER_TABLE2["Average Size of solutions"]) in rendered

    def test_table_render_alignment(self):
        table = table1()
        lines = table.render().splitlines()
        header = lines[2]
        rows = lines[4:-1]
        assert rows, "expected data rows"
        assert {len(r) for r in rows} == {len(header)}


class TestFigureDrivers:
    def test_fig1_census(self):
        table = fig1_architecture()
        rows = dict(zip(table.column("Kind"), table.column("Count")))
        for kind in ("information", "planning", "coordination"):
            assert rows[kind] == 1
        assert rows["application-container"] == 4

    def test_fig2_two_messages(self):
        table, trace = fig2_planning_protocol()
        assert [t[3] for t in trace] == ["plan", "plan"]
        assert trace[0][0] == "coordination"
        assert trace[1][0] == "planning"

    def test_fig3_protocol_order(self):
        table, trace = fig3_replanning_protocol()
        kinds = [(t[0], t[1], t[3]) for t in trace]
        assert kinds[0] == ("coordination", "planning", "replan")
        assert kinds[1] == ("planning", "information", "lookup")
        assert kinds[-1] == ("planning", "coordination", "replan")
        assert any(t[3] == "find-containers" for t in trace)
        assert any(t[3] == "can-execute" for t in trace)

    def test_fig4_7_all_ok(self):
        table = fig4_to_7_conversions()
        assert table.column("Round-trip") == ["ok"] * 4

    def test_fig8_conserves_nodes(self):
        table = fig8_crossover()
        sizes = dict(zip(table.column("Role"), table.column("Size")))
        assert sizes["parent a"] + sizes["parent b"] == sizes["child a"] + sizes["child b"]

    def test_fig9_mutation_changes_tree(self):
        table = fig9_mutation()
        trees = dict(zip(table.column("Role"), table.column("Tree")))
        assert trees["original"] != trees["mutated"]

    def test_fig10_11_census(self):
        table = fig10_11_case_study()
        rows = dict(zip(table.column("Property"), table.column("Value")))
        assert rows["end-user activities"] == 7
        assert rows["flow-control activities"] == 6
        assert rows["transitions"] == 15
        assert rows["plan-tree size"] == 10
        assert rows["tree recovered from graph matches Figure 11"] is True

    def test_fig12_13_census(self):
        table = fig12_13_ontology()
        rows = dict(zip(table.column("Property"), table.column("Value")))
        assert rows["schema classes"] == 10
        assert rows["Activity instances"] == 13
        assert rows["Transition instances"] == 15
        assert rows["Data instances"] == 12
        assert rows["Service instances"] == 4


class TestAblations:
    def test_weight_sweep_runs(self):
        table = weight_sweep(seeds=range(2), config=FAST)
        assert len(table.rows) == 6
        assert all(0.0 <= r <= 1.0 for r in table.column("solve rate"))

    def test_smax_sweep_runs(self):
        table = smax_sweep(seeds=range(2), smax_values=(10, 40), config=FAST)
        assert table.column("Smax") == [10, 40]
        # emitted plans never exceed their Smax
        for smax, size in zip(table.column("Smax"), table.column("avg size")):
            assert size <= smax

    def test_baseline_comparison_runs(self):
        from repro.workloads import chain_problem

        table = baseline_comparison(
            problems=(chain_problem(4),), seeds=range(2), config=FAST
        )
        planners = table.column("planner")
        assert "GP (paper)" in planners and "forward search" in planners
        # forward search is optimal on a chain
        row = dict(zip(planners, table.column("solve rate")))
        assert row["forward search"] == 1.0

    def test_replanning_sweep_zero_failures_all_complete(self):
        table = replanning_sweep(
            failure_rates=(0.0,), cases=2, enable_replanning=(True,), containers=2
        )
        assert table.column("completed") == [1.0]
