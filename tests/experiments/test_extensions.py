"""Extension ablation drivers (fast configurations)."""

import pytest

from repro.experiments import checkpoint_value, scalability_sweep, transfer_tradeoff


def test_transfer_tradeoff_single_crossover():
    table = transfer_tradeoff(bandwidths_mbps=(1.0, 100.0, 10000.0))
    winners = table.column("winner")
    assert winners[0] == "compressed"
    assert winners[-1] == "plain"


def test_transfer_times_positive_and_monotone():
    table = transfer_tradeoff(bandwidths_mbps=(1.0, 10.0, 100.0))
    plains = table.column("plain (s)")
    assert all(t > 0 for t in plains)
    assert plains == sorted(plains, reverse=True)


def test_checkpoint_value_overhead_bounded():
    table = checkpoint_value(failure_rates=(0.0,), seeds=range(2))
    rate, plain, ckpt, speedup = table.rows[0]
    assert ckpt <= plain * 1.10


def test_checkpoint_value_wins_under_failures():
    table = checkpoint_value(failure_rates=(0.8,), seeds=range(2))
    rate, plain, ckpt, speedup = table.rows[0]
    assert speedup > 1.2


def test_scalability_speedup_then_plateau():
    table = scalability_sweep(fleet_sizes=(1, 3))
    makespans = dict(zip(table.column("containers"), table.column("makespan (s)")))
    assert makespans[3] < makespans[1]
    assert makespans[3] == pytest.approx(175.0, rel=0.1)
