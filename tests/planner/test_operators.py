"""Crossover and mutation (Figures 8-9), including size-bound invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import random_tree, selective, sequential, tree_size
from repro.planner import crossover, mutate, random_node_path

ACTS = ["A", "B", "C"]


class TestCrossover:
    def test_skipped_below_rate(self):
        a, b = sequential("A", "B"), sequential("C", "C")
        out_a, out_b = crossover(a, b, rng=0, crossover_rate=0.0)
        assert out_a is a and out_b is b

    def test_swaps_subtrees(self, rng):
        a = sequential("A", "A", "A")
        b = sequential("B", "B", "B")
        for _ in range(20):
            ca, cb = crossover(a, b, rng, crossover_rate=1.0)
            if ca != a:
                # material from b must appear in child a, and vice versa
                assert "B" in ca.activities() or "A" in cb.activities()
                break
        else:
            pytest.fail("crossover never exchanged material")

    def test_node_count_conserved(self, rng):
        for _ in range(50):
            a = random_tree(ACTS, max_size=20, rng=rng)
            b = random_tree(ACTS, max_size=20, rng=rng)
            ca, cb = crossover(a, b, rng, smax=40, crossover_rate=1.0)
            if (ca, cb) != (a, b):
                assert ca.size + cb.size == a.size + b.size

    def test_smax_failure_keeps_parents(self, rng):
        big = random_tree(ACTS, size=40, max_size=40, rng=rng)
        small = random_tree(ACTS, size=2, max_size=40, rng=rng)
        results = {crossover(big, small, rng, smax=40, crossover_rate=1.0)
                   for _ in range(30)}
        for ca, cb in results:
            assert ca.size <= 40 and cb.size <= 40

    def test_parents_never_mutated(self, rng):
        a = sequential("A", selective("B", "C"))
        b = sequential("C", "A")
        frozen_a, frozen_b = a, b
        crossover(a, b, rng, crossover_rate=1.0)
        assert a == frozen_a and b == frozen_b


class TestMutation:
    def test_zero_rate_is_identity(self, rng):
        tree = sequential("A", "B")
        assert mutate(tree, ACTS, rng, mutation_rate=0.0) is tree

    def test_rate_one_replaces_root(self):
        tree = sequential("A", "B", "C")
        mutated = mutate(tree, ["Z"], rng=3, mutation_rate=1.0, smax=40)
        # The root is always selected at rate 1, so the result is a fresh
        # random tree over ["Z"] (possibly by way of a failed size check).
        assert set(mutated.activities()) <= {"Z", "A", "B", "C"}

    def test_respects_smax(self, rng):
        for _ in range(100):
            tree = random_tree(ACTS, max_size=40, rng=rng)
            mutated = mutate(tree, ACTS, rng, smax=40, mutation_rate=0.3)
            assert mutated.size <= 40

    def test_small_rate_usually_identity(self, rng):
        tree = random_tree(ACTS, size=10, rng=rng)
        unchanged = sum(
            mutate(tree, ACTS, rng, mutation_rate=0.001) == tree
            for _ in range(100)
        )
        assert unchanged >= 90

    def test_deterministic_under_seed(self):
        tree = random_tree(ACTS, size=15, rng=1)
        a = mutate(tree, ACTS, rng=9, mutation_rate=0.5)
        b = mutate(tree, ACTS, rng=9, mutation_rate=0.5)
        assert a == b


class TestRandomNodePath:
    def test_uniform_over_nodes(self, rng):
        tree = sequential("A", "B")  # 3 nodes
        seen = {random_node_path(tree, rng) for _ in range(100)}
        assert seen == {(), (0,), (1,)}


@given(
    seed=st.integers(0, 10_000),
    rate=st.floats(0.0, 1.0),
    smax=st.integers(5, 60),
)
@settings(max_examples=150, deadline=None)
def test_mutation_never_exceeds_smax(seed, rate, smax):
    rng = np.random.default_rng(seed)
    tree = random_tree(ACTS, max_size=smax, rng=rng)
    mutated = mutate(tree, ACTS, rng, smax=smax, mutation_rate=rate)
    assert 1 <= mutated.size <= smax


@given(seed=st.integers(0, 10_000), smax=st.integers(5, 60))
@settings(max_examples=150, deadline=None)
def test_crossover_never_exceeds_smax(seed, smax):
    rng = np.random.default_rng(seed)
    a = random_tree(ACTS, max_size=smax, rng=rng)
    b = random_tree(ACTS, max_size=smax, rng=rng)
    ca, cb = crossover(a, b, rng, smax=smax, crossover_rate=1.0)
    assert ca.size <= smax and cb.size <= smax
