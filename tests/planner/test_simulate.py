"""Plan simulation: Eq.-1 accounting, flow enumeration, merging."""

import pytest

from repro.errors import SimulationError
from repro.planner import (
    ActivitySpec,
    PlanningProblem,
    SimulationOptions,
    simulate_plan,
)
from repro.plan import concurrent, iterative, selective, sequential, terminal
from repro.process.conditions import Atom, Relation


def ready(name):
    return Atom(name, "Status", Relation.EQ, "ready")


@pytest.fixture
def problem():
    return PlanningProblem.build(
        "p",
        {"d0": {"Status": "ready"}},
        (ready("d2"),),
        [
            ActivitySpec("a1", precondition=ready("d0"), effects={"d1": {"Status": "ready"}}),
            ActivitySpec("a2", precondition=ready("d1"), effects={"d2": {"Status": "ready"}}),
            ActivitySpec("b", precondition=ready("never"), effects={"x": {"Status": "ready"}}),
        ],
    )


class TestTerminalsAndSequences:
    def test_valid_chain(self, problem):
        report = simulate_plan(sequential("a1", "a2"), problem)
        assert report.validity_fitness() == 1.0
        assert report.goal_fitness(problem) == 1.0
        assert report.total_executed == 2

    def test_wrong_order_partial_validity(self, problem):
        report = simulate_plan(sequential("a2", "a1"), problem)
        # a2 invalid (d1 missing), a1 valid
        assert report.validity_fitness() == 0.5
        assert report.goal_fitness(problem) == 0.0

    def test_invalid_activity_does_not_change_state(self, problem):
        report = simulate_plan(sequential("b", "a1", "a2"), problem)
        assert report.validity_fitness() == pytest.approx(2 / 3)
        assert report.goal_fitness(problem) == 1.0

    def test_unknown_activity_counts_executed_never_valid(self, problem):
        report = simulate_plan(sequential("ghost", "a1"), problem)
        assert report.total_executed == 2
        assert report.total_valid == 1

    def test_single_terminal(self, problem):
        report = simulate_plan(terminal("a1"), problem)
        assert report.validity_fitness() == 1.0
        assert report.goal_fitness(problem) == 0.0


class TestSelective:
    def test_enumerates_each_branch(self, problem):
        report = simulate_plan(
            sequential("a1", selective("a2", "b")), problem
        )
        assert report.flow_count == 2
        # flow 1: a1, a2 valid (goal met); flow 2: a1 valid, b invalid
        assert report.validity_fitness() == pytest.approx(3 / 4)
        assert report.goal_fitness(problem) == pytest.approx(0.5)

    def test_nested_selective_flows_multiply(self, problem):
        tree = sequential(selective("a1", "a1"), selective("a2", "a2"))
        report = simulate_plan(tree, problem)
        assert report.flow_count == 4


class TestIterative:
    def test_default_counts_one_and_two(self, problem):
        report = simulate_plan(iterative("a1"), problem)
        # k=1: executes a1 once; k=2: twice (second application idempotent
        # but still valid).
        assert report.flow_count == 2
        assert report.total_executed == 3
        assert report.validity_fitness() == 1.0

    def test_custom_iteration_counts(self, problem):
        opts = SimulationOptions(iteration_counts=(3,))
        report = simulate_plan(iterative("a1"), problem, opts)
        assert report.flow_count == 1
        assert report.total_executed == 3

    def test_invalid_options(self):
        with pytest.raises(SimulationError):
            SimulationOptions(iteration_counts=())
        with pytest.raises(SimulationError):
            SimulationOptions(iteration_counts=(0,))
        with pytest.raises(SimulationError):
            SimulationOptions(max_flows=0)


class TestConcurrent:
    def test_left_to_right_default(self, problem):
        report = simulate_plan(concurrent("a1", "a2"), problem)
        assert report.flow_count == 1
        assert report.validity_fitness() == 1.0

    def test_multiple_orders_enumerated(self, problem):
        opts = SimulationOptions(concurrent_orders=2)
        report = simulate_plan(concurrent("a2", "a1"), problem, opts)
        # order (a2, a1): a2 invalid; order (a1, a2): both valid
        assert report.flow_count == 2
        assert report.validity_fitness() == pytest.approx(3 / 4)


class TestMerging:
    def test_identical_branches_merge(self, problem):
        # Both selective branches produce identical states -> one merged
        # flow with weight 2.
        report = simulate_plan(selective("a1", "a1"), problem)
        assert len(report.flows) == 1
        assert report.flows[0].weight == 2
        assert report.flow_count == 2

    def test_merging_preserves_fitness(self, problem):
        tree = sequential(selective("a1", "a1"), "a2")
        report = simulate_plan(tree, problem)
        assert report.validity_fitness() == 1.0
        assert report.goal_fitness(problem) == 1.0

    def test_deep_nesting_does_not_overflow(self, problem):
        # Structural unrolling of nested iteratives is O(4^depth); the
        # execution budget must cut this off (truncated=True) while keeping
        # the fitness components well-defined.
        tree = terminal("a1")
        for _ in range(16):
            tree = iterative(selective(tree, tree))
        report = simulate_plan(tree, problem)
        assert report.truncated
        assert 0.0 <= report.validity_fitness() <= 1.0
        assert 0.0 <= report.goal_fitness(problem) <= 1.0

    def test_execution_budget_configurable(self, problem):
        opts = SimulationOptions(max_executions=3)
        report = simulate_plan(
            sequential("a1", "a1", "a1", "a1", "a1"), problem, opts
        )
        assert report.truncated
        assert report.total_executed == 3

    def test_budget_not_hit_on_normal_plans(self, problem):
        report = simulate_plan(sequential("a1", "a2"), problem)
        assert not report.truncated

    def test_truncation_reported(self, problem):
        # Wide selectives over distinct outcomes exceed max_flows.
        opts = SimulationOptions(max_flows=2)
        tree = sequential(
            selective("a1", "b", "ghost"),
            selective("a2", "b", "ghost"),
        )
        report = simulate_plan(tree, problem, opts)
        assert report.truncated
        assert len(report.flows) <= 2


class TestCaseStudy:
    def test_fig11_perfect_fitness(self, case_problem):
        from repro.virolab import plan_tree

        report = simulate_plan(plan_tree(), case_problem)
        assert report.validity_fitness() == 1.0
        assert report.goal_fitness(case_problem) == 1.0

    def test_minimal_plan_also_perfect(self, case_problem):
        report = simulate_plan(
            sequential("POD", "P3DR2", "P3DR3", "PSF"), case_problem
        )
        assert report.validity_fitness() == 1.0
        assert report.goal_fitness(case_problem) == 1.0

    def test_psf_needs_both_streams(self, case_problem):
        report = simulate_plan(
            sequential("POD", "P3DR2", "PSF"), case_problem
        )
        assert report.validity_fitness() < 1.0
        assert report.goal_fitness(case_problem) == 0.0
