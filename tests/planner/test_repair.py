"""Plan repair: removing never-valid activities, swapping flagged terminals."""

import pytest

from repro.plan import normalize, selective, sequential, terminal
from repro.planner import GPConfig, GPPlanner, PlanEvaluator
from repro.planner.repair import (
    never_valid_terminals,
    repair_plan,
    swap_terminals,
)


def test_clean_plan_untouched(case_problem):
    from repro.virolab import plan_tree

    result = repair_plan(plan_tree(), case_problem)
    assert not result.changed
    assert normalize(result.plan) == normalize(plan_tree())


def test_never_valid_terminal_detected(case_problem):
    # 'ghost' is not in T; PSF-before-inputs is invalid in this position.
    tree = sequential("ghost", "POD", "P3DR2", "P3DR3", "PSF")
    paths = never_valid_terminals(tree, case_problem)
    assert (0,) in paths


def test_repair_removes_ghost_and_improves(case_problem):
    tree = sequential("ghost", "POD", "P3DR2", "P3DR3", "PSF")
    evaluator = PlanEvaluator(case_problem)
    before = evaluator(tree)
    result = repair_plan(tree, case_problem, evaluator)
    assert result.removed == ("ghost",)
    assert result.fitness.validity == 1.0
    assert result.fitness.overall > before.overall
    assert result.fitness.goal == before.goal


def test_repair_collapses_degenerate_controllers(case_problem):
    # A selective whose branches are ghost/ghost: both invalid; repairing
    # must remove the whole construct, not leave a dangling controller.
    tree = sequential(
        selective("ghost", "ghost"), "POD", "P3DR2", "P3DR3", "PSF"
    )
    result = repair_plan(tree, case_problem)
    assert result.fitness.validity == 1.0
    assert "ghost" not in result.plan.activities()


def test_useful_duplicates_survive(case_problem):
    # P3DR2 twice: the second execution is *valid* (inputs still present),
    # so repair must not remove it on validity grounds... but it IS
    # removable without hurting validity totals?  No: deleting a valid
    # execution lowers valid count, which the guard forbids.
    tree = sequential("POD", "P3DR2", "P3DR2", "P3DR3", "PSF")
    result = repair_plan(tree, case_problem)
    assert result.fitness.goal == 1.0
    assert result.plan.activities().count("P3DR2") == 2


def test_repair_after_gp_reaches_full_validity(case_problem):
    """The Table-2 near-miss seeds: repair lifts validity to 1.0."""
    cfg = GPConfig(population_size=100, generations=10)
    fixed = 0
    for seed in range(4):
        run = GPPlanner(cfg, rng=seed).plan(case_problem)
        result = repair_plan(run.best_plan, case_problem)
        assert result.fitness.overall >= run.best_fitness.overall - 1e-9
        if run.best_fitness.validity < 1.0 and result.fitness.validity == 1.0:
            fixed += 1
        # goal fitness never degrades
        assert result.fitness.goal >= run.best_fitness.goal - 1e-9


def test_single_terminal_root_not_deleted(case_problem):
    result = repair_plan(terminal("ghost"), case_problem)
    # The root cannot be deleted; the plan stays (still useless, but valid
    # behaviour for the API).
    assert result.plan == terminal("ghost")


def test_repair_collapses_to_single_terminal(case_problem):
    # Deleting the only other child must collapse the sequential away
    # entirely: the fixed point is a bare terminal, not a 1-ary controller.
    result = repair_plan(sequential("ghost", "POD"), case_problem)
    assert result.removed == ("ghost",)
    assert result.plan == terminal("POD")


def test_repair_fixed_point_with_no_removable_terminal(case_problem):
    # Every terminal executes validly in some flow: the very first round
    # finds no candidate and the plan comes back structurally unchanged.
    tree = sequential("POD", "P3DR2")
    result = repair_plan(tree, case_problem)
    assert not result.changed
    assert result.plan == normalize(tree)


def test_repair_collapses_nested_degenerate_controllers(case_problem):
    # The whole left selective is never-valid; repair must unwind both the
    # inner and the outer construct without leaving degenerate nodes.
    tree = sequential(
        selective(sequential("ghost", "ghost"), "ghost"),
        "POD",
        "P3DR2",
        "P3DR3",
        "PSF",
    )
    result = repair_plan(tree, case_problem)
    assert result.fitness.validity == 1.0
    assert "ghost" not in result.plan.activities()
    assert result.plan == normalize(
        sequential("POD", "P3DR2", "P3DR3", "PSF")
    )


# -- terminal swapping (the plan library's local repair) -------------------- #


def test_swap_terminals_swaps_exactly_the_mapped_names():
    tree = sequential("a", selective("b", "a"), "c")
    swapped, swaps = swap_terminals(tree, {"a": "z"})
    assert swapped == sequential("z", selective("b", "z"), "c")
    assert swaps == (("a", "z"), ("a", "z"))
    # Structure and untouched terminals are preserved exactly.
    assert swapped.size == tree.size


def test_swap_terminals_noop_without_matches():
    tree = sequential("a", "b")
    swapped, swaps = swap_terminals(tree, {"x": "y"})
    assert swapped == tree
    assert swaps == ()
