"""Tournament selection (Section 3.4.5)."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.plan import terminal
from repro.planner import Fitness, tournament_select


def fit(value):
    return Fitness(0, 0, 0, value)


@pytest.fixture
def population():
    return [terminal(name) for name in ("A", "B", "C", "D")]


def test_same_size_by_default(population, rng):
    fits = [fit(v) for v in (0.1, 0.2, 0.3, 0.4)]
    out = tournament_select(population, fits, rng)
    assert len(out) == 4


def test_explicit_count(population, rng):
    fits = [fit(0.5)] * 4
    assert len(tournament_select(population, fits, rng, count=7)) == 7


def test_selection_pressure(population, rng):
    # D has the highest fitness: it must dominate the selected population.
    fits = [fit(v) for v in (0.1, 0.2, 0.3, 0.9)]
    out = tournament_select(population, fits, rng, count=2000)
    share_d = sum(t.activity == "D" for t in out) / len(out)
    share_a = sum(t.activity == "A" for t in out) / len(out)
    # P(select D) = 1 - P(no D in tournament)... = 1-(3/4)^2 = 0.4375
    assert 0.40 < share_d < 0.48
    # A only wins tournaments against itself: (1/4)^2 = 0.0625
    assert 0.04 < share_a < 0.09


def test_tournament_size_one_is_uniform(population, rng):
    fits = [fit(v) for v in (0.1, 0.2, 0.3, 0.9)]
    out = tournament_select(population, fits, rng, tournament_size=1, count=2000)
    share_a = sum(t.activity == "A" for t in out) / len(out)
    assert 0.2 < share_a < 0.3


def test_larger_tournament_stronger_pressure(rng):
    population = [terminal(str(i)) for i in range(10)]
    fits = [fit(i / 10) for i in range(10)]
    soft = tournament_select(population, fits, rng, tournament_size=2, count=3000)
    hard = tournament_select(population, fits, rng, tournament_size=5, count=3000)
    best = population[-1].activity
    assert (
        sum(t.activity == best for t in hard)
        > sum(t.activity == best for t in soft)
    )


def test_errors(population, rng):
    with pytest.raises(PlanningError):
        tournament_select(population, [fit(1)], rng)
    with pytest.raises(PlanningError):
        tournament_select([], [], rng)
    with pytest.raises(PlanningError):
        tournament_select(population, [fit(1)] * 4, rng, tournament_size=0)


def test_deterministic_under_seed(population):
    fits = [fit(v) for v in (0.1, 0.2, 0.3, 0.4)]
    a = tournament_select(population, fits, np.random.default_rng(5))
    b = tournament_select(population, fits, np.random.default_rng(5))
    assert a == b


def test_vectorized_matches_sequential_reference(population):
    """The one-shot (wanted, k) index draw + argmax must reproduce the old
    per-tournament loop exactly: same RNG consumption, same winners."""
    fits = [fit(v) for v in (0.1, 0.4, 0.4, 0.2)]  # ties included

    def reference(rng, wanted, k):
        out = []
        for _ in range(wanted):
            contenders = rng.integers(0, len(population), size=k)
            best = max(contenders, key=lambda idx: fits[int(idx)].overall)
            out.append(population[int(best)])
        return out

    for k in (1, 2, 3):
        seed = 100 + k
        expected = reference(np.random.default_rng(seed), 31, k)
        got = tournament_select(
            population, fits, np.random.default_rng(seed), tournament_size=k, count=31
        )
        assert got == expected
        # and the generator ends in the same state (downstream draws align)
        r1, r2 = np.random.default_rng(seed), np.random.default_rng(seed)
        reference(r1, 31, k)
        tournament_select(population, fits, r2, tournament_size=k, count=31)
        assert r1.bit_generator.state == r2.bit_generator.state


def test_count_zero_is_empty(population):
    fits = [fit(0.5)] * 4
    assert tournament_select(population, fits, np.random.default_rng(0), count=0) == []
