"""WorldState: copy-on-write semantics, lookups, condition evaluation."""

import pytest

from repro.planner import WorldState
from repro.process.conditions import MISSING, Atom, Relation


@pytest.fixture
def state():
    return WorldState({"D1": {"Classification": "POD-Parameter", "Size": 3}})


class TestLookup:
    def test_lookup(self, state):
        assert state.lookup("D1", "Size") == 3

    def test_lookup_missing_raises(self, state):
        with pytest.raises(KeyError):
            state.lookup("D2", "Size")
        with pytest.raises(KeyError):
            state.lookup("D1", "Nope")

    def test_peek_missing_is_sentinel(self, state):
        assert state.peek("D2", "Size") is MISSING
        assert state.peek("D1", "Nope") is MISSING
        assert state.peek("D1", "Size") == 3

    def test_has_and_names(self, state):
        assert state.has("D1") and not state.has("D2")
        assert state.data_names() == ("D1",)

    def test_properties_copy(self, state):
        props = state.properties("D1")
        props["Size"] = 99
        assert state.lookup("D1", "Size") == 3

    def test_unknown_properties_empty(self, state):
        assert state.properties("D9") == {}


class TestDerivation:
    def test_with_data_creates(self, state):
        new = state.with_data("D2", Classification="2D Image")
        assert new.has("D2")
        assert not state.has("D2")

    def test_with_data_merges(self, state):
        new = state.with_data("D1", Size=10)
        assert new.lookup("D1", "Size") == 10
        assert new.lookup("D1", "Classification") == "POD-Parameter"
        assert state.lookup("D1", "Size") == 3

    def test_updated_multi(self, state):
        new = state.updated({"D2": {"a": 1}, "D3": {"b": 2}})
        assert new.has("D2") and new.has("D3")

    def test_cow_shares_untouched_items(self, state):
        # Unmodified property dicts are shared by identity (the hot-path
        # optimization); modified ones are fresh.
        new = state.updated({"D2": {"a": 1}})
        assert new._data["D1"] is state._data["D1"]
        new2 = state.updated({"D1": {"Size": 9}})
        assert new2._data["D1"] is not state._data["D1"]

    def test_copy_deep_enough(self, state):
        clone = state.copy()
        assert clone == state and clone is not state


class TestConditions:
    def test_satisfies(self, state):
        assert state.satisfies(Atom("D1", "Size", Relation.EQ, 3))
        assert not state.satisfies(Atom("D1", "Size", Relation.GT, 3))

    def test_equality(self, state):
        assert state == WorldState({"D1": {"Classification": "POD-Parameter", "Size": 3}})
        assert state != WorldState({})
        assert (state == 42) is NotImplemented or not (state == 42)

    def test_len_iter(self, state):
        assert len(state) == 1
        assert list(state) == ["D1"]


class TestMergeKey:
    def test_equal_states_equal_keys(self):
        a = WorldState({"D1": {"Size": 3}, "D2": {"x": 1}})
        b = WorldState({"D2": {"x": 1}, "D1": {"Size": 3}})
        assert a.merge_key() == b.merge_key()
        assert hash(a.merge_key()) == hash(b.merge_key())

    def test_key_is_cached(self, state):
        assert state.merge_key() is state.merge_key()

    def test_derived_state_gets_fresh_key(self, state):
        derived = state.with_data("D9", flag=True)
        assert derived.merge_key() != state.merge_key()

    def test_unhashable_values_yield_none(self):
        weird = WorldState({"D1": {"blob": [1, 2, 3]}})
        assert weird.merge_key() is None
        assert weird.merge_key() is None  # cached negative result too

    def test_pickle_drops_cached_key(self, state):
        import pickle

        key = state.merge_key()
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state
        assert clone.merge_key() == key
