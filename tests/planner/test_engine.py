"""The batched evaluation engine: dedup, shared cache, pool determinism."""

import pickle

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.plan import random_tree, sequential, terminal
from repro.planner import (
    EvaluationEngine,
    GPConfig,
    GPPlanner,
    PlanEvaluator,
    evaluate_tree,
)


def _random_trees(problem, count, seed=0):
    rng = np.random.default_rng(seed)
    activities = list(problem.activity_names)
    return [
        random_tree(activities, max_size=40, rng=rng, max_branch=4)
        for _ in range(count)
    ]


class TestStructuralKey:
    def test_equal_trees_share_key(self):
        a = sequential("POD", terminal("PSF"))
        b = sequential("POD", "PSF")
        assert a.struct_key() == b.struct_key()
        assert a.struct_key() is a.struct_key()  # cached

    def test_different_trees_differ(self):
        assert sequential("POD", "PSF").struct_key() != (
            sequential("PSF", "POD").struct_key()
        )

    def test_key_survives_pickle_without_cache(self):
        tree = sequential("POD", "PSF")
        key = tree.struct_key()
        clone = pickle.loads(pickle.dumps(tree))
        assert "_skey" not in clone.__dict__
        assert clone.struct_key() == key


class TestEvaluateMany:
    def test_matches_single_evaluation(self, case_problem):
        trees = _random_trees(case_problem, 30)
        with EvaluationEngine(case_problem) as engine:
            batched = engine.evaluate_many(trees)
        reference = PlanEvaluator(case_problem)
        assert batched == [reference(tree) for tree in trees]

    def test_in_batch_dedup_simulates_once(self, case_problem):
        tree = sequential("POD", "PSF")
        batch = [tree, sequential("POD", "PSF"), tree]
        with EvaluationEngine(case_problem) as engine:
            fits = engine.evaluate_many(batch)
        assert engine.evaluations == 1
        assert engine.cache_hits == 2
        assert fits[0] == fits[1] == fits[2]

    def test_cache_spans_batches_and_single_calls(self, case_problem):
        tree = sequential("POD", "PSF")
        with EvaluationEngine(case_problem) as engine:
            engine.evaluate_many([tree])
            engine.evaluate_many([sequential("POD", "PSF")])
            engine(tree)
        assert engine.evaluations == 1
        assert engine.cache_hits == 2

    def test_cached_fitness_equals_fresh_simulation(self, case_problem):
        """200 random trees: a value served from the cache is bit-identical
        to a from-scratch simulation of the same tree."""
        trees = _random_trees(case_problem, 200, seed=3)
        with EvaluationEngine(case_problem) as engine:
            first = engine.evaluate_many(trees)
            again = engine.evaluate_many(trees)  # all cache hits
        assert again == first
        evaluator = PlanEvaluator(case_problem)
        for tree, cached in zip(trees, first):
            assert cached == evaluate_tree(
                tree,
                case_problem,
                evaluator.weights,
                evaluator.smax,
                evaluator.options,
            )

    def test_shares_cache_with_wrapped_evaluator(self, case_problem):
        evaluator = PlanEvaluator(case_problem)
        tree = sequential("POD", "PSF")
        evaluator(tree)
        with EvaluationEngine(evaluator=evaluator) as engine:
            engine.evaluate_many([tree])
        assert evaluator.evaluations == 1

    def test_requires_problem_or_evaluator(self):
        with pytest.raises(PlanningError):
            EvaluationEngine()


class TestDeterminism:
    @pytest.mark.parametrize("workers", [0, 1, 4])
    def test_worker_count_never_changes_results(
        self, case_problem, workers
    ):
        cfg = GPConfig(
            population_size=20, generations=3, workers=workers
        )
        result = GPPlanner(cfg, rng=11).plan(case_problem)
        serial = GPPlanner(cfg.with_(workers=0), rng=11).plan(case_problem)
        assert result == serial  # eval_time excluded from comparison
        assert result.best_fitness == serial.best_fitness
        assert result.history == serial.history

    def test_chunking_never_changes_results(self, case_problem):
        trees = _random_trees(case_problem, 25, seed=5)
        with EvaluationEngine(case_problem, workers=2, chunk_size=3) as a:
            coarse = a.evaluate_many(trees)
        with EvaluationEngine(case_problem, workers=3, chunk_size=11) as b:
            fine = b.evaluate_many(trees)
        assert coarse == fine


class TestCacheEffect:
    def test_gp_run_simulates_fewer_than_no_cache(self, case_problem):
        """The shared cache + dedup must strictly cut unique simulations
        vs. the same seeded run with caching disabled."""
        cfg = GPConfig(population_size=20, generations=4)
        cached = GPPlanner(cfg, rng=2).plan(case_problem)
        uncached_evaluator = PlanEvaluator(case_problem, cache_size=0)
        uncached = GPPlanner(cfg, rng=2).plan(
            case_problem, evaluator=uncached_evaluator
        )
        assert cached.best_fitness == uncached.best_fitness
        assert cached.evaluations < uncached.evaluations
        # no-cache count == every single evaluator call
        assert uncached.evaluations == uncached.cache_misses

    def test_lru_bound_is_enforced(self, case_problem):
        evaluator = PlanEvaluator(case_problem, cache_size=4)
        trees = _random_trees(case_problem, 10, seed=9)
        for tree in trees:
            evaluator(tree)
        assert len(evaluator) <= 4
        assert evaluator.evaluations >= 10 - 4

    def test_lru_evicts_least_recently_used(self, case_problem):
        evaluator = PlanEvaluator(case_problem, cache_size=2)
        a, b, c = (terminal(n) for n in ("POD", "PSF", "POR"))
        evaluator(a)
        evaluator(b)
        evaluator(a)  # refresh a: b is now LRU
        evaluator(c)  # evicts b
        hits = evaluator.cache_hits
        evaluator(a)
        assert evaluator.cache_hits == hits + 1  # a survived
        evaluator(b)
        assert evaluator.evaluations == 4  # b was re-simulated

    def test_cache_size_zero_disables_caching(self, case_problem):
        evaluator = PlanEvaluator(case_problem, cache_size=0)
        tree = sequential("POD", "PSF")
        assert evaluator(tree) == evaluator(tree)
        assert evaluator.evaluations == 2
        assert evaluator.cache_hits == 0

    def test_negative_cache_size_rejected(self, case_problem):
        with pytest.raises(PlanningError):
            PlanEvaluator(case_problem, cache_size=-1)


class TestPoolPlumbing:
    def test_problem_pickle_roundtrip_still_evaluates(self, case_problem):
        clone = pickle.loads(pickle.dumps(case_problem))
        tree = sequential("POD", "PSF")
        original = PlanEvaluator(case_problem)(tree)
        assert PlanEvaluator(clone)(tree) == original

    def test_engine_close_is_idempotent(self, case_problem):
        engine = EvaluationEngine(case_problem, workers=2)
        engine.evaluate_many(_random_trees(case_problem, 8))
        engine.close()
        engine.close()

    def test_invalid_workers_rejected(self, case_problem):
        with pytest.raises(PlanningError):
            EvaluationEngine(case_problem, workers=-1)
        with pytest.raises(PlanningError):
            EvaluationEngine(case_problem, chunk_size=0)


class TestTelemetry:
    def test_result_surfaces_cache_and_timing(self, case_problem):
        cfg = GPConfig(population_size=20, generations=3)
        result = GPPlanner(cfg, rng=4).plan(case_problem)
        assert result.cache_hits + result.cache_misses == 20 * 4
        assert result.cache_misses == result.evaluations
        assert 0.0 < result.cache_hit_rate < 1.0
        assert result.eval_time > 0.0
        assert len(result.history) == 3
        for stats in result.history:
            assert stats.eval_time >= 0.0
            assert 0.0 <= stats.cache_hit_rate <= 1.0
