"""Fitness evaluation: Eqs. 1-4, weights, caching."""

import pytest

from repro.errors import PlanningError
from repro.plan import sequential, terminal
from repro.planner import FitnessWeights, PlanEvaluator
from repro.virolab import plan_tree


class TestWeights:
    def test_defaults_are_table1(self):
        w = FitnessWeights()
        assert (w.validity, w.goal, w.efficiency) == (0.2, 0.5, 0.3)

    def test_must_sum_to_one(self):
        with pytest.raises(PlanningError):
            FitnessWeights(0.5, 0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(PlanningError):
            FitnessWeights(-0.2, 0.9, 0.3)

    def test_custom_weights_ok(self):
        FitnessWeights(1.0, 0.0, 0.0)


class TestEvaluator:
    def test_fig11_matches_paper_arithmetic(self, case_problem):
        evaluator = PlanEvaluator(case_problem)
        fitness = evaluator(plan_tree())
        # fv = fg = 1, fr = 1 - 10/40 = 0.75 -> f = 0.2 + 0.5 + 0.3*0.75
        assert fitness.validity == 1.0
        assert fitness.goal == 1.0
        assert fitness.efficiency == pytest.approx(0.75)
        assert fitness.overall == pytest.approx(0.925)

    def test_eq4_weighted_sum(self, case_problem):
        evaluator = PlanEvaluator(
            case_problem, weights=FitnessWeights(0.0, 0.0, 1.0)
        )
        fitness = evaluator(terminal("POD"))
        assert fitness.overall == pytest.approx(1 - 1 / 40)

    def test_cache_counts_unique_evaluations(self, case_problem):
        evaluator = PlanEvaluator(case_problem)
        tree = sequential("POD", "PSF")
        evaluator(tree)
        evaluator(tree)
        evaluator(sequential("POD", "PSF"))  # equal tree -> cache hit
        assert evaluator.evaluations == 1
        evaluator.clear_cache()
        evaluator(tree)
        assert evaluator.evaluations == 2

    def test_fitness_ordering(self, case_problem):
        evaluator = PlanEvaluator(case_problem)
        good = evaluator(plan_tree())
        bad = evaluator(terminal("PSF"))
        assert bad < good
        assert bad <= good

    def test_invalid_smax(self, case_problem):
        with pytest.raises(PlanningError):
            PlanEvaluator(case_problem, smax=0)
