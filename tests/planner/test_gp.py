"""The GP planning loop (Section 3.4.6) and its configuration."""

import pytest

from repro.errors import PlanningError
from repro.planner import GPConfig, GPPlanner, PlanEvaluator, table1_config
from repro.workloads import chain_problem


class TestConfig:
    def test_defaults_match_table1(self):
        cfg = table1_config()
        rows = dict(cfg.as_table())
        assert rows == {
            "Population Size": 200,
            "Number of Generation": 20,
            "Crossover Rate": 0.7,
            "Mutation Rate": 0.001,
            "Smax": 40,
            "wv": 0.2,
            "wg": 0.5,
        }

    def test_with_override(self):
        cfg = GPConfig().with_(population_size=50)
        assert cfg.population_size == 50
        assert cfg.generations == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"population_size": 31},  # odd
            {"generations": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"smax": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(PlanningError):
            GPConfig(**kwargs)


class TestPlanner:
    def test_initial_population_sized_and_bounded(self, case_problem, small_gp_config):
        planner = GPPlanner(small_gp_config, rng=0)
        population = planner.initial_population(case_problem)
        assert len(population) == small_gp_config.population_size
        assert all(1 <= t.size <= small_gp_config.smax for t in population)

    def test_solves_chain(self, small_gp_config):
        problem = chain_problem(3)
        result = GPPlanner(small_gp_config, rng=0).plan(problem)
        assert result.best_fitness.overall > 0.5
        assert result.generations_run == small_gp_config.generations

    def test_solves_case_study_with_modest_budget(self, case_problem):
        # Individual runs at this reduced budget occasionally fall just
        # short of perfect goal fitness; over a few seeds at least one run
        # must fully solve, and none may be far off.
        cfg = GPConfig(population_size=100, generations=15)
        results = [GPPlanner(cfg, rng=seed).plan(case_problem) for seed in range(3)]
        assert any(r.best_fitness.goal == 1.0 for r in results)
        assert all(r.best_fitness.goal >= 0.9 for r in results)

    def test_history_recorded(self, case_problem, small_gp_config):
        result = GPPlanner(small_gp_config, rng=0).plan(case_problem)
        assert len(result.history) == small_gp_config.generations
        assert result.history[0].generation == 0
        assert result.evaluations > 0

    def test_best_fitness_never_decreases_much(self, case_problem, small_gp_config):
        # No elitism, so mild regressions are possible, but the trend over
        # the run must be non-degenerate: final best >= first best - 0.2.
        result = GPPlanner(small_gp_config, rng=1).plan(case_problem)
        assert result.history[-1].best_fitness >= result.history[0].best_fitness - 0.2

    def test_early_stop(self, case_problem):
        cfg = GPConfig(population_size=100, generations=50, early_stop=True)
        result = GPPlanner(cfg, rng=0).plan(case_problem)
        assert result.generations_run < 50

    def test_deterministic_under_seed(self, case_problem, small_gp_config):
        a = GPPlanner(small_gp_config, rng=11).plan(case_problem)
        b = GPPlanner(small_gp_config, rng=11).plan(case_problem)
        assert a.best_plan == b.best_plan
        assert a.best_fitness.overall == b.best_fitness.overall

    def test_external_evaluator_reused(self, case_problem, small_gp_config):
        evaluator = PlanEvaluator(
            case_problem,
            small_gp_config.weights,
            small_gp_config.smax,
            small_gp_config.simulation,
        )
        GPPlanner(small_gp_config, rng=0).plan(case_problem, evaluator)
        first = evaluator.evaluations
        # An identically-seeded run regenerates identical trees, so the
        # shared cache absorbs every evaluation.
        GPPlanner(small_gp_config, rng=0).plan(case_problem, evaluator)
        assert evaluator.evaluations == first

    def test_solved_property(self, case_problem, small_gp_config):
        result = GPPlanner(small_gp_config, rng=3).plan(case_problem)
        assert result.solved == (
            result.best_fitness.validity == 1.0 and result.best_fitness.goal == 1.0
        )
