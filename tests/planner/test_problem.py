"""ActivitySpec and PlanningProblem tests."""

import pytest

from repro.errors import PlanningError
from repro.planner import ActivitySpec, PlanningProblem, WorldState
from repro.process import ActivityKind
from repro.process.conditions import Atom, Relation


def ready(name):
    return Atom(name, "Status", Relation.EQ, "ready")


@pytest.fixture
def spec():
    return ActivitySpec(
        "build",
        precondition=ready("src"),
        effects={"bin": {"Status": "ready", "Size": 10}},
    )


class TestActivitySpec:
    def test_inputs_default_from_precondition(self, spec):
        assert spec.inputs == ("src",)

    def test_outputs_default_from_effects(self, spec):
        assert spec.outputs == ("bin",)

    def test_service_defaults_to_name(self, spec):
        assert spec.service == "build"

    def test_applicable(self, spec):
        assert spec.applicable(WorldState({"src": {"Status": "ready"}}))
        assert not spec.applicable(WorldState({}))

    def test_apply_merges_effects(self, spec):
        state = WorldState({"src": {"Status": "ready"}})
        out = spec.apply(state)
        assert out.lookup("bin", "Size") == 10
        assert not state.has("bin")

    def test_as_activity(self, spec):
        act = spec.as_activity()
        assert act.kind is ActivityKind.END_USER
        assert act.inputs == ("src",)
        assert act.outputs == ("bin",)

    def test_as_activity_renamed(self, spec):
        act = spec.as_activity("build_2")
        assert act.name == "build_2"
        assert act.service == "build"

    def test_empty_name_rejected(self):
        with pytest.raises(PlanningError):
            ActivitySpec("")


class TestPlanningProblem:
    def test_build_helper(self, spec, case_problem):
        prob = PlanningProblem.build(
            "p", {"src": {"Status": "ready"}}, (ready("bin"),), [spec]
        )
        assert prob.activity_names == ("build",)
        assert prob.spec("build") is not None
        assert prob.spec("nothere") is None

    def test_requires_goals(self, spec):
        with pytest.raises(PlanningError):
            PlanningProblem.build("p", {}, (), [spec])

    def test_requires_activities(self):
        with pytest.raises(PlanningError):
            PlanningProblem.build("p", {}, (ready("x"),), [])

    def test_key_name_mismatch_rejected(self, spec):
        with pytest.raises(PlanningError):
            PlanningProblem(
                initial_state=WorldState({}),
                goals=(ready("bin"),),
                activities={"wrong": spec},
            )

    def test_goal_score_fraction(self, spec):
        prob = PlanningProblem.build(
            "p",
            {"src": {"Status": "ready"}},
            (ready("bin"), ready("doc")),
            [spec],
        )
        state = spec.apply(prob.initial_state)
        assert prob.goal_score(state) == 0.5
        assert prob.goal_score(prob.initial_state) == 0.0

    def test_case_study_problem_shape(self, case_problem):
        # T has the paper's seven end-user activities.
        assert set(case_problem.activity_names) == {
            "POD", "P3DR1", "P3DR2", "P3DR3", "P3DR4", "POR", "PSF",
        }
        assert len(case_problem.goals) == 1
        assert case_problem.initial_state.has("D7")
