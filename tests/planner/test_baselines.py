"""Baseline planners: random search, hill climbing, forward search."""

import pytest

from repro.errors import PlanningError
from repro.plan import Terminal
from repro.planner import (
    GPConfig,
    PlanEvaluator,
    PlanningProblem,
    WorldState,
    forward_search,
    hill_climb,
    random_search,
)
from repro.workloads import chain_problem, choice_problem, distractor_problem


@pytest.fixture
def evaluator(case_problem):
    return PlanEvaluator(case_problem)


class TestRandomSearch:
    def test_respects_budget(self, case_problem, evaluator):
        result = random_search(case_problem, evaluator, budget=50, rng=0)
        assert evaluator.evaluations <= 50
        assert result.best_fitness.overall > 0.0

    def test_deterministic(self, case_problem):
        results = []
        for _ in range(2):
            ev = PlanEvaluator(case_problem)
            results.append(random_search(case_problem, ev, budget=30, rng=4))
        assert results[0].best_plan == results[1].best_plan

    def test_improves_with_budget(self, case_problem):
        small = random_search(case_problem, PlanEvaluator(case_problem), 10, rng=1)
        large = random_search(case_problem, PlanEvaluator(case_problem), 500, rng=1)
        assert large.best_fitness.overall >= small.best_fitness.overall


class TestHillClimb:
    def test_runs_and_returns_best(self, case_problem, evaluator):
        result = hill_climb(case_problem, evaluator, budget=100, rng=0)
        assert 0.0 < result.best_fitness.overall <= 1.0
        assert result.best_plan.size <= evaluator.smax

    def test_restarts_on_stall(self, case_problem, evaluator):
        # tiny stall limit forces restarts; must still return a plan
        result = hill_climb(
            case_problem, evaluator, budget=60, rng=0, stall_limit=3
        )
        assert result.best_plan is not None


class TestForwardSearch:
    def test_chain_shortest_plan(self):
        problem = chain_problem(4)
        result = forward_search(problem)
        assert result.best_plan.activities() == ["a1", "a2", "a3", "a4"]
        assert result.solved

    def test_choice_takes_one_route(self):
        result = forward_search(choice_problem())
        names = result.best_plan.activities()
        assert names in (["left1", "left2"], ["right1", "right2"])

    def test_distractors_ignored(self):
        result = forward_search(distractor_problem(3, 5))
        assert all(not a.startswith("junk") for a in result.best_plan.activities())

    def test_single_step_plan_is_terminal(self):
        problem = chain_problem(1)
        result = forward_search(problem)
        assert isinstance(result.best_plan, Terminal)

    def test_unreachable_goal_raises(self):
        from repro.planner import ActivitySpec
        from repro.process.conditions import Atom

        problem = PlanningProblem.build(
            "impossible",
            {"d0": {"Status": "ready"}},
            (Atom("never", "Status", "=", "ready"),),
            [ActivitySpec("a", precondition=Atom("d0", "Status", "=", "ready"),
                          effects={"d1": {"Status": "ready"}})],
        )
        with pytest.raises(PlanningError):
            forward_search(problem)

    def test_trivial_goal_raises(self):
        problem = chain_problem(2)
        trivial = PlanningProblem(
            initial_state=WorldState({"d2": {"Status": "ready"}}),
            goals=problem.goals,
            activities=problem.activities,
        )
        with pytest.raises(PlanningError):
            forward_search(trivial)

    def test_case_study_solved(self, case_problem, evaluator):
        result = forward_search(case_problem, evaluator)
        assert result.solved
        # The shortest route: POD, then both stream reconstructions, PSF.
        assert len(result.best_plan.activities()) == 4


class TestComparative:
    def test_gp_beats_random_on_chain(self, small_gp_config):
        """The headline A4 claim at small scale: with a matched budget, GP
        finds better plans than random search on ordering-sensitive
        problems."""
        from repro.planner import GPPlanner

        problem = chain_problem(6)
        gp = GPPlanner(small_gp_config, rng=0).plan(problem)
        ev = PlanEvaluator(problem)
        rnd = random_search(problem, ev, budget=max(gp.evaluations, 1), rng=0)
        assert gp.best_fitness.overall >= rnd.best_fitness.overall
