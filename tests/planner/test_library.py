"""The plan library: keys, LRU repository, substitutions, GP seeding."""

import pytest

from repro.plan import sequential, terminal, tree_to_process
from repro.planner import GPConfig, GPPlanner
from repro.planner.library import (
    PlanEntry,
    PlanLibrary,
    goal_signature,
    library_key,
    problem_digest,
    storage_key,
    substitution_map,
)
from repro.planner.problem import PlanningProblem
from repro.process.program import process_digest
from repro.workloads.plan_mix import (
    plan_mix_activities,
    plan_mix_goals,
    plan_mix_problem,
)


def _process_for(tree, problem):
    return tree_to_process(
        tree,
        name=f"plan-{problem.name}",
        library={
            name: spec.as_activity()
            for name, spec in problem.activities.items()
        },
    )


def _entry(problem, tree, fitness=0.9, **overrides):
    kwargs = dict(
        digest=problem_digest(problem),
        goal_sig=goal_signature(problem.goals),
        plan=tree,
        process=_process_for(tree, problem),
        fitness=fitness,
        goals=tuple(str(goal) for goal in problem.goals),
        problem_name=problem.name,
    )
    kwargs.update(overrides)
    return PlanEntry(**kwargs)


# -- key scheme ------------------------------------------------------------- #


def test_process_digest_is_stable_across_sessions():
    """The committed hex pins the digest: any canonicalization change that
    would orphan persisted library entries must show up here."""
    from repro.virolab import process_description

    assert (
        process_digest(process_description())
        == "9ef297d8ba89163359e7d6f6d2fd37b3"
    )


def test_process_digest_tracks_content():
    problem = plan_mix_problem(0)
    one = _process_for(sequential("fetch", "clean"), problem)
    other = _process_for(sequential("fetch", "archive"), problem)
    assert process_digest(one) != process_digest(other)
    assert process_digest(one) == process_digest(
        _process_for(sequential("fetch", "clean"), problem)
    )


def test_goal_signature_order_insensitive():
    goals = plan_mix_goals(1)
    assert goal_signature(goals) == goal_signature(tuple(reversed(goals)))
    assert goal_signature(goals) != goal_signature(plan_mix_goals(0))


def test_problem_digest_ignores_name_and_initial_state():
    base = plan_mix_problem(0)
    renamed = PlanningProblem.build(
        "another-name",
        {"src": {"Status": "ready"}, "extra": {"Status": "ready"}},
        plan_mix_goals(0),
        plan_mix_activities(),
    )
    assert problem_digest(renamed) == problem_digest(base)
    # All four goal variants share one digest: same activity set T.
    assert problem_digest(plan_mix_problem(2)) == problem_digest(base)


def test_problem_digest_tracks_activity_set():
    base = plan_mix_problem(0)
    smaller = PlanningProblem.build(
        base.name,
        {"src": {"Status": "ready"}},
        plan_mix_goals(0),
        plan_mix_activities()[:-1],
    )
    assert problem_digest(smaller) != problem_digest(base)


def test_library_key_and_storage_key():
    problem = plan_mix_problem(0)
    digest, goal_sig = library_key(problem)
    assert digest == problem_digest(problem)
    assert goal_sig == goal_signature(problem.goals)
    assert storage_key(digest, goal_sig) == f"planlib/{digest}/{goal_sig}"


# -- entries and payload integrity ------------------------------------------ #


def test_entry_payload_roundtrip():
    problem = plan_mix_problem(0)
    entry = _entry(problem, sequential("fetch", "clean"))
    back = PlanEntry.from_payload(entry.to_payload())
    assert back is not None
    assert back.key == entry.key
    assert back.plan == entry.plan
    assert back.pd_digest == entry.pd_digest


def test_entry_rejects_tampered_process():
    problem = plan_mix_problem(0)
    entry = _entry(problem, sequential("fetch", "clean"))
    payload = entry.to_payload()
    payload["process"] = _process_for(sequential("fetch", "archive"), problem)
    assert PlanEntry.from_payload(payload) is None


def test_entry_rejects_malformed_payload():
    assert PlanEntry.from_payload({"digest": "x"}) is None
    assert PlanEntry.from_payload({}) is None


# -- the LRU repository ----------------------------------------------------- #


def test_library_get_and_touch():
    problem = plan_mix_problem(0)
    lib = PlanLibrary()
    entry = _entry(problem, sequential("fetch", "clean"))
    assert lib.put(entry) == []
    assert len(lib) == 1 and entry.key in lib
    got = lib.get(*entry.key)
    assert got is entry and got.uses == 1
    assert lib.get("nope", "nope") is None


def test_library_lru_eviction_reports_victims():
    lib = PlanLibrary(max_entries=2)
    entries = [
        _entry(plan_mix_problem(variant), sequential("fetch", "clean"))
        for variant in range(3)
    ]
    lib.put(entries[0])
    lib.put(entries[1])
    lib.get(*entries[0].key)  # refresh: entry 1 is now the LRU victim
    evicted = lib.put(entries[2])
    assert [victim.key for victim in evicted] == [entries[1].key]
    assert entries[0].key in lib and entries[2].key in lib
    assert lib.counters["evict"] == 1


def test_library_related_ranks_overlap_and_digest():
    lib = PlanLibrary()
    v0, v1, v2 = (
        _entry(plan_mix_problem(variant), sequential("fetch", "clean"))
        for variant in range(3)
    )
    lib.put(v0)
    lib.put(v2)
    # v1's goals share two conditions with v0 and one with v2.
    texts = tuple(str(goal) for goal in plan_mix_goals(1))
    related = lib.related(v1.digest, texts)
    assert [entry.goal_sig for entry in related] == [v0.goal_sig, v2.goal_sig]
    # A foreign digest with disjoint goals is never related.
    assert lib.related("f" * 32, ("nothing",)) == []


def test_library_absorb_and_purge():
    lib = PlanLibrary()
    entry = _entry(plan_mix_problem(0), sequential("fetch", "clean"))
    assert lib.absorb(entry) is True
    assert lib.absorb(entry) is False  # already present
    assert lib.purge() == 1
    assert len(lib) == 0 and lib.stats().entries == 0


def test_library_stats_snapshot():
    lib = PlanLibrary(max_entries=7)
    lib.count("hit")
    stats = lib.stats()
    assert stats.max_entries == 7
    assert stats.counters["hit"] == 1
    stats.counters["hit"] = 99  # a snapshot, not the live dict
    assert lib.counters["hit"] == 1


def test_library_rejects_bad_cap():
    with pytest.raises(ValueError):
        PlanLibrary(max_entries=0)


# -- repair substitutions --------------------------------------------------- #


def test_substitution_map_picks_effect_equivalent_service():
    problem = plan_mix_problem(0)
    resolvable = [name for name in problem.activities if name != "publish"]
    mapping = substitution_map(problem, ["publish"], resolvable)
    assert mapping == {"publish": "publish_backup"}


def test_substitution_map_omits_irreparable_activities():
    problem = plan_mix_problem(0)
    # No other activity produces 'raw', so a vanished fetch has no swap.
    resolvable = [name for name in problem.activities if name != "fetch"]
    assert substitution_map(problem, ["fetch"], resolvable) == {}
    # Both publishers gone: publish is irreparable too.
    resolvable = [
        name
        for name in problem.activities
        if name not in ("publish", "publish_backup")
    ]
    assert substitution_map(problem, ["publish"], resolvable) == {}


def test_substitution_map_unknown_activity_ignored():
    problem = plan_mix_problem(0)
    assert substitution_map(problem, ["ghost"], problem.activities) == {}


# -- GP seeding ------------------------------------------------------------- #


def _seed_plan():
    return sequential("fetch", "clean", "analyze_a", "publish")


def test_seeded_population_contains_seed_verbatim():
    problem = plan_mix_problem(0)
    cfg = GPConfig(population_size=12, generations=2, smax=12, library="on")
    planner = GPPlanner(cfg, rng=3)
    population = planner.initial_population(problem, seeds=(_seed_plan(),))
    assert len(population) == cfg.population_size
    assert _seed_plan() in population


def test_seeding_respects_smax():
    problem = plan_mix_problem(0)
    cfg = GPConfig(population_size=12, generations=2, smax=3, library="on")
    oversized = sequential(
        "fetch", "clean", "analyze_a", "publish", "archive"
    )
    population = GPPlanner(cfg, rng=3).initial_population(
        problem, seeds=(oversized,)
    )
    assert oversized not in population
    assert all(tree.size <= cfg.smax for tree in population)


def test_seeds_warm_start_beats_or_matches_seed_fitness():
    problem = plan_mix_problem(0)
    cfg = GPConfig(population_size=20, generations=3, smax=12, library="on")
    from repro.planner import PlanEvaluator

    # Score the seed exactly as the GP engine will (same Smax, same
    # simulation options): the seeded run can never finish below it.
    seed_fitness = PlanEvaluator(
        problem, smax=cfg.smax, options=cfg.simulation
    )(_seed_plan()).overall
    result = GPPlanner(cfg, rng=5).plan(problem, seeds=(_seed_plan(),))
    assert result.best_fitness.overall >= seed_fitness - 1e-12


def test_library_off_ignores_seeds_bit_identically():
    """``library="off"`` must not even *look* at seeds: the RNG stream and
    therefore the whole run is identical to a seedless call."""
    problem = plan_mix_problem(0)
    cfg = GPConfig(population_size=16, generations=3, smax=12)  # off default
    plain = GPPlanner(cfg, rng=11).plan(problem)
    seeded = GPPlanner(cfg, rng=11).plan(problem, seeds=(_seed_plan(),))
    assert seeded.best_plan == plain.best_plan
    assert seeded.best_fitness == plain.best_fitness
    assert seeded.history == plain.history
    assert seeded.evaluations == plain.evaluations
