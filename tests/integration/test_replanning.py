"""Re-planning integration: recovery from container failures mid-enactment."""

import pytest

from repro.errors import ServiceError
from repro.planner import GPConfig
from repro.services import standard_environment
from repro.virolab import planning_problem, process_description
from tests.services.conftest import drive, synthetic_services

INITIAL = {
    "D1": {"Classification": "POD-Parameter"},
    "D2": {"Classification": "P3DR-Parameter"},
    "D3": {"Classification": "P3DR-Parameter"},
    "D4": {"Classification": "P3DR-Parameter"},
    "D5": {"Classification": "POR-Parameter"},
    "D6": {"Classification": "PSF-Parameter"},
    "D7": {"Classification": "2D Image"},
}


def run_case(failure_probability, with_problem=True, seed=0, containers=3):
    env, services, fleet = standard_environment(
        synthetic_services(),
        containers=containers,
        failure_probability=failure_probability,
        failure_seed=seed,
        planner_config=GPConfig(population_size=30, generations=5),
        planner_seed=seed,
    )
    request = {
        "process": process_description(),
        "initial_data": dict(INITIAL),
        "task": "case",
    }
    if with_problem:
        request["problem"] = planning_problem()
    result = drive(
        env,
        services.coordination,
        lambda: services.coordination.call("coordination", "execute-task", request),
        max_events=5_000_000,
    )
    return result, env, services


def test_no_failures_completes_without_replans():
    result, env, services = run_case(0.0)
    assert result["status"] == "completed"
    assert result["replans"] == 0


def test_retries_absorb_rare_failures():
    # At a low failure rate the per-activity retries usually suffice.
    result, env, services = run_case(0.05, seed=3)
    assert result["status"] == "completed"


def test_replanning_recovers_from_heavy_failures():
    completed = 0
    replans = 0
    for seed in range(4):
        try:
            result, env, services = run_case(0.35, with_problem=True, seed=seed)
        except ServiceError:
            continue
        completed += 1
        replans += result["replans"]
    assert completed >= 2
    # at this failure rate at least one case must actually have re-planned
    assert replans >= 1


def test_replanning_beats_no_replanning():
    """The A5 headline: with re-planning on, strictly more cases complete
    under heavy failure injection."""

    def completion_rate(with_problem):
        done = 0
        for seed in range(5):
            try:
                result, _, _ = run_case(0.45, with_problem=with_problem, seed=seed)
                done += result["status"] == "completed"
            except ServiceError:
                pass
        return done

    assert completion_rate(True) >= completion_rate(False)


def test_replan_trace_follows_figure3():
    for seed in range(6):
        try:
            result, env, services = run_case(0.5, with_problem=True, seed=seed)
        except ServiceError:
            continue
        if result["replans"] == 0:
            continue
        actions = env.trace.actions()
        replan_requests = [
            t for t in actions if t[:2] == ("coordination", "planning") and t[3] == "replan"
        ]
        probes = [t for t in actions if t[3] == "can-execute"]
        lookups = [
            t for t in actions if t[:2] == ("planning", "information")
        ]
        assert replan_requests and probes and lookups
        return
    pytest.skip("no seed produced a completed run with replans")
