"""Plan-then-enact integration on synthetic problems (the Figure-2 path)."""

import pytest

from repro.grid import EndUserService
from repro.planner import GPConfig
from repro.services import standard_environment
from repro.workloads import chain_problem, diamond_problem
from tests.services.conftest import drive


def services_for(problem):
    return [
        EndUserService(spec.service or name, work=5.0, effects=spec.effects)
        for name, spec in problem.activities.items()
    ]


@pytest.mark.parametrize("problem_factory", [
    lambda: chain_problem(4),
    lambda: diamond_problem(3),
])
def test_planned_enactment_reaches_goal(problem_factory):
    problem = problem_factory()
    env, services, fleet = standard_environment(
        services_for(problem),
        containers=2,
        planner_config=GPConfig(population_size=60, generations=8),
        planner_seed=1,
    )
    initial = {
        name: dict(problem.initial_state.properties(name))
        for name in problem.initial_state.data_names()
    }
    result = drive(
        env,
        services.coordination,
        lambda: services.coordination.call(
            "coordination",
            "execute-task",
            {"problem": problem, "initial_data": initial, "task": problem.name},
        ),
        max_events=5_000_000,
    )
    assert result["status"] == "completed"
    # The final case data satisfies every goal specification.
    from repro.planner import WorldState

    final = WorldState(result["data"])
    assert problem.goal_score(final) == 1.0


def test_planned_enactment_repairs_invalid_occurrences():
    """The planning service's repair pass means the enacted plan contains
    no activity that fails its input condition (no wasted dispatches)."""
    problem = chain_problem(3)
    env, services, fleet = standard_environment(
        services_for(problem),
        containers=2,
        planner_config=GPConfig(population_size=40, generations=6),
        planner_seed=0,
    )
    initial = {"d0": {"Status": "ready"}}
    result = drive(
        env,
        services.coordination,
        lambda: services.coordination.call(
            "coordination",
            "execute-task",
            {"problem": problem, "initial_data": initial, "task": "chain"},
        ),
        max_events=5_000_000,
    )
    assert result["status"] == "completed"
    retries = [e for e in result["events"] if e[1] == "retry"]
    input_condition_failures = [
        e for e in retries if "input condition" in e[2]
    ]
    assert input_condition_failures == []
