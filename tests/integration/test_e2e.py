"""End-to-end: the real reconstruction enacted on the simulated grid.

This is the repository's capstone test — everything the paper describes
running together: Figure-10 process description, Figure-13 data bindings,
the Figure-1 services, application containers executing the actual POD /
P3DR / POR / PSF numerics with payloads in persistent storage, and Cons1
terminating the refinement loop.
"""

import numpy as np
import pytest

from repro.virolab import (
    planning_problem,
    process_description,
    psf,
    run_pipeline,
    setup_virolab_case,
    virolab_grid,
)
from tests.services.conftest import drive


@pytest.fixture(scope="module")
def enactment():
    env, core, fleet = virolab_grid(containers=3)
    case = setup_virolab_case(core.storage, size=24, count=40, seed=0)
    result = drive(
        env,
        core.coordination,
        lambda: core.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": process_description(),
                "initial_data": case["initial_data"],
                "payload_keys": case["payload_keys"],
                "work": case["work"],
                "problem": planning_problem(),
                "task": "3DSD-real",
            },
        ),
        max_events=5_000_000,
    )
    return env, core, case, result


def test_completes(enactment):
    env, core, case, result = enactment
    assert result["status"] == "completed"
    assert result["replans"] == 0


def test_resolution_goal_reached(enactment):
    env, core, case, result = enactment
    d12 = result["data"]["D12"]
    assert d12["Classification"] == "Resolution File"
    assert d12["Value"] <= 8.0


def test_real_model_in_storage(enactment):
    env, core, case, result = enactment
    model = core.storage.get(result["payload_keys"]["D9"])
    assert model.shape == (24, 24, 24)
    # the reconstruction genuinely resembles the hidden phantom
    c = np.corrcoef(model.ravel(), case["phantom"].ravel())[0, 1]
    assert c > 0.5


def test_grid_result_matches_reference_pipeline(enactment):
    """The distributed enactment and the in-process pipeline compute the
    same first-iteration science (same seeds, same algorithms)."""
    env, core, case, result = enactment
    reference = run_pipeline(
        case["dataset"],
        case["initial_model"],
        goal_resolution=8.0,
        max_iterations=5,
        seed=0,
    )
    assert result["data"]["D12"]["Value"] == pytest.approx(
        reference.history[0].resolution
    )


def test_intermediate_data_classified(enactment):
    env, core, case, result = enactment
    assert result["data"]["D8"]["Classification"] == "Orientation File"
    assert result["data"]["D10"]["Classification"] == "3D Model"
    assert result["data"]["D10"]["Stream"] == "even"
    assert result["data"]["D11"]["Stream"] == "odd"


def test_two_stream_models_differ(enactment):
    env, core, case, result = enactment
    even = core.storage.get(result["payload_keys"]["D10"])
    odd = core.storage.get(result["payload_keys"]["D11"])
    assert not np.allclose(even, odd)
    # but they agree at low resolution (same underlying structure)
    assert psf(even, odd)["resolution"] < 40.0
