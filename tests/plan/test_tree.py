"""Plan-tree structure tests."""

import pytest

from repro.errors import PlanError
from repro.plan import (
    Controller,
    ControllerKind,
    Terminal,
    concurrent,
    iter_nodes,
    iterative,
    pretty,
    replace_at,
    selective,
    sequential,
    subtree_at,
    tree_depth,
)


@pytest.fixture
def fig11():
    return sequential(
        "POD",
        "P3DR1",
        iterative("POR", concurrent("P3DR2", "P3DR3", "P3DR4"), "PSF"),
    )


class TestConstruction:
    def test_terminal_size(self):
        assert Terminal("A").size == 1

    def test_fig11_size_is_ten(self, fig11):
        assert fig11.size == 10

    def test_empty_controller_rejected(self):
        with pytest.raises(PlanError):
            Controller(ControllerKind.SEQUENTIAL, ())

    def test_empty_terminal_rejected(self):
        with pytest.raises(PlanError):
            Terminal("")

    def test_string_children_coerced(self):
        node = sequential("A", "B")
        assert all(isinstance(c, Terminal) for c in node.children)

    def test_single_child_controller_allowed(self):
        # Unlike grammar forks, plan trees allow one-child controllers.
        assert selective("A").size == 2

    def test_bad_child_rejected(self):
        with pytest.raises(PlanError):
            Controller(ControllerKind.SEQUENTIAL, ("not a node",))


class TestTraversal:
    def test_activities_left_to_right(self, fig11):
        assert fig11.activities() == [
            "POD", "P3DR1", "POR", "P3DR2", "P3DR3", "P3DR4", "PSF",
        ]

    def test_iter_nodes_preorder(self, fig11):
        paths = [p for p, _ in iter_nodes(fig11)]
        assert paths[0] == ()
        assert paths[1] == (0,)
        assert len(paths) == fig11.size

    def test_subtree_at(self, fig11):
        node = subtree_at(fig11, (2, 1))
        assert isinstance(node, Controller)
        assert node.kind is ControllerKind.CONCURRENT

    def test_subtree_bad_path(self, fig11):
        with pytest.raises(PlanError):
            subtree_at(fig11, (9,))
        with pytest.raises(PlanError):
            subtree_at(fig11, (0, 0))  # terminal has no children

    def test_depth(self, fig11):
        assert tree_depth(Terminal("A")) == 0
        assert tree_depth(fig11) == 3


class TestReplace:
    def test_replace_root(self, fig11):
        assert replace_at(fig11, (), Terminal("X")) == Terminal("X")

    def test_replace_leaf(self, fig11):
        out = replace_at(fig11, (0,), Terminal("X"))
        assert out.activities()[0] == "X"
        # original untouched (immutability)
        assert fig11.activities()[0] == "POD"

    def test_replace_subtree_changes_size(self, fig11):
        out = replace_at(fig11, (2,), Terminal("X"))
        assert out.size == 4

    def test_replace_bad_path(self, fig11):
        with pytest.raises(PlanError):
            replace_at(fig11, (17,), Terminal("X"))


class TestRendering:
    def test_pretty_contains_structure(self, fig11):
        text = pretty(fig11)
        assert "Sequential" in text and "Iterative" in text and "Concurrent" in text
        assert text.splitlines()[1] == "  POD"

    def test_str_compact(self):
        assert str(selective("A", "B")) == "Selective[A, B]"
