"""Plan metrics: Eq. 3 efficiency and censuses."""

import pytest

from repro.plan import (
    ControllerKind,
    concurrent,
    controller_census,
    iterative,
    representation_efficiency,
    selective,
    sequential,
    summary,
    terminal,
    terminal_census,
)

FIG11 = sequential(
    "POD", "P3DR1", iterative("POR", concurrent("P3DR2", "P3DR3", "P3DR4"), "PSF")
)


class TestEfficiency:
    def test_eq3_formula(self):
        # fr = 1 - size/Smax
        assert representation_efficiency(FIG11, 40) == pytest.approx(1 - 10 / 40)

    def test_single_terminal(self):
        assert representation_efficiency(terminal("A"), 40) == pytest.approx(0.975)

    def test_at_bound_scores_zero(self):
        tree = sequential(*[terminal("A")] * 39)  # size 40
        assert tree.size == 40
        assert representation_efficiency(tree, 40) == 0.0

    def test_oversize_clamped_to_zero(self):
        tree = sequential(*[terminal("A")] * 50)
        assert representation_efficiency(tree, 40) == 0.0

    def test_invalid_smax(self):
        with pytest.raises(ValueError):
            representation_efficiency(FIG11, 0)


class TestCensus:
    def test_controller_census(self):
        census = controller_census(FIG11)
        assert census[ControllerKind.SEQUENTIAL] == 1
        assert census[ControllerKind.ITERATIVE] == 1
        assert census[ControllerKind.CONCURRENT] == 1
        assert census.get(ControllerKind.SELECTIVE, 0) == 0

    def test_terminal_census(self):
        census = terminal_census(sequential("A", "A", "B"))
        assert census == {"A": 2, "B": 1}

    def test_summary(self):
        s = summary(FIG11)
        assert s == {
            "size": 10,
            "depth": 3,
            "terminals": 7,
            "sequential": 1,
            "concurrent": 1,
            "selective": 0,
            "iterative": 1,
        }
