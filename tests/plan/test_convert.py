"""Tree <-> AST <-> process conversions (Figures 4-7, 10-11)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import (
    ast_to_tree,
    concurrent,
    iterative,
    normalize,
    process_to_tree,
    random_tree,
    selective,
    sequential,
    terminal,
    tree_to_ast,
    tree_to_process,
)
from repro.process import (
    ActivityKind,
    Atom,
    IterativeNode,
    parse_process,
    validate_process,
)
from repro.process.conditions import TRUE


FIG10_TEXT = (
    "BEGIN; POD; P3DR1; "
    '{ITERATIVE {COND D12.Value > 8} '
    "{POR; {FORK {P3DR2} {P3DR3} {P3DR4} JOIN}; PSF}}; END"
)
FIG11_TREE = sequential(
    "POD", "P3DR1", iterative("POR", concurrent("P3DR2", "P3DR3", "P3DR4"), "PSF")
)


class TestAstTree:
    def test_fig10_to_fig11(self):
        assert ast_to_tree(parse_process(FIG10_TEXT)) == FIG11_TREE

    def test_iterative_sequence_body_becomes_children(self):
        ast = parse_process("BEGIN; {ITERATIVE {COND X.v > 1} {A; B; C}}; END")
        tree = ast_to_tree(ast)
        assert len(tree.children) == 3

    def test_tree_to_ast_true_conditions(self):
        ast = tree_to_ast(FIG11_TREE)
        loop = ast.children[2]
        assert isinstance(loop, IterativeNode)
        assert loop.condition is TRUE

    def test_tree_to_ast_condition_provider(self):
        cond = Atom("D12", "Value", ">", 8)
        ast = tree_to_ast(FIG11_TREE, condition_provider=lambda node: cond)
        assert ast.children[2].condition == cond

    def test_single_child_concurrent_collapses(self):
        tree = sequential("A", concurrent("B"))
        ast = tree_to_ast(tree)
        assert ast.activity_names() == ["A", "B"]
        # round-trip yields the normalized tree
        assert ast_to_tree(ast) == normalize(tree)


class TestNormalize:
    def test_flatten_nested_sequential(self):
        tree = sequential("A", sequential("B", "C"))
        assert normalize(tree) == sequential("A", "B", "C")

    def test_collapse_single_child(self):
        assert normalize(selective(terminal("A"))) == terminal("A")
        assert normalize(concurrent(terminal("A"))) == terminal("A")
        assert normalize(sequential(terminal("A"))) == terminal("A")

    def test_iterative_keeps_identity(self):
        tree = iterative("A")
        assert normalize(tree) == tree

    def test_iterative_splices_sequential_child(self):
        tree = iterative(sequential("A", "B"))
        assert normalize(tree) == iterative("A", "B")

    def test_idempotent(self):
        tree = sequential("A", sequential(selective(terminal("B")), "C"))
        once = normalize(tree)
        assert normalize(once) == once


class TestTreeProcess:
    def test_fig11_to_process_census(self):
        pd = tree_to_process(FIG11_TREE, name="3DSD")
        validate_process(pd)
        assert len(pd.end_user_activities()) == 7
        assert len(pd.transitions) == 15

    def test_roundtrip(self):
        pd = tree_to_process(FIG11_TREE)
        assert normalize(process_to_tree(pd)) == normalize(FIG11_TREE)

    def test_duplicate_activities_renamed(self):
        tree = sequential("P3DR", "P3DR", "P3DR")
        pd = tree_to_process(tree)
        names = [a.name for a in pd.end_user_activities()]
        assert names == ["P3DR", "P3DR_2", "P3DR_3"]
        # all occurrences share one service
        assert {a.service for a in pd.end_user_activities()} == {"P3DR"}

    def test_renamed_activities_inherit_library_bindings(self):
        from repro.process import Activity

        lib = {"X": Activity("X", service="SVC", inputs=("D1",), outputs=("D2",))}
        pd = tree_to_process(sequential("X", "X"), library=lib)
        renamed = pd.activity("X_2")
        assert renamed.service == "SVC"
        assert renamed.inputs == ("D1",)


@given(
    st.integers(0, 10_000),
    st.integers(1, 40),
)
@settings(max_examples=100, deadline=None)
def test_random_tree_process_roundtrip(seed, size):
    tree = random_tree(["A", "B", "C"], size=size, max_size=40, rng=seed)
    pd = tree_to_process(tree)
    validate_process(pd)
    recovered = process_to_tree(pd)

    def services(t):
        """Multiset of services in execution order, via the rename scheme."""
        out = []
        for name in t.activities():
            base, _, suffix = name.rpartition("_")
            out.append(base if suffix.isdigit() and base else name)
        return out

    assert services(recovered) == services(normalize(tree))
