"""Random plan-tree generation: size bounds, shape distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.plan import Controller, Terminal, random_shape, random_tree


class TestRandomShape:
    def test_size_one_is_terminal(self, rng):
        assert random_shape(1, rng) == []

    def test_parts_sum(self, rng):
        for n in (2, 5, 17, 40):
            parts = random_shape(n, rng)
            assert sum(parts) == n - 1
            assert all(p >= 1 for p in parts)

    def test_max_branch_respected(self, rng):
        for _ in range(100):
            assert len(random_shape(40, rng, max_branch=3)) <= 3

    def test_invalid_size(self, rng):
        with pytest.raises(PlanError):
            random_shape(0, rng)


class TestRandomTree:
    def test_exact_size(self, rng):
        for size in (1, 2, 7, 40):
            tree = random_tree(["A", "B"], size=size, rng=rng)
            assert tree.size == size

    def test_size_bounds_random(self, rng):
        sizes = {random_tree(["A"], max_size=40, rng=rng).size for _ in range(200)}
        assert min(sizes) >= 1 and max(sizes) <= 40
        assert len(sizes) > 10  # actually varied

    def test_terminals_from_activity_set(self, rng):
        tree = random_tree(["X", "Y"], size=25, rng=rng)
        assert set(tree.activities()) <= {"X", "Y"}

    def test_all_controller_kinds_appear(self, rng):
        kinds = set()
        for _ in range(100):
            tree = random_tree(["A"], size=15, rng=rng)
            for node in tree.walk():
                if isinstance(node, Controller):
                    kinds.add(node.kind)
        assert len(kinds) == 4

    def test_deterministic_under_seed(self):
        a = random_tree(["A", "B"], max_size=30, rng=7)
        b = random_tree(["A", "B"], max_size=30, rng=7)
        assert a == b

    def test_empty_activity_set_rejected(self, rng):
        with pytest.raises(PlanError):
            random_tree([], size=3, rng=rng)

    def test_oversized_request_rejected(self, rng):
        with pytest.raises(PlanError):
            random_tree(["A"], size=50, max_size=40, rng=rng)

    def test_size_one_is_terminal(self, rng):
        assert isinstance(random_tree(["A"], size=1, rng=rng), Terminal)


@given(st.integers(0, 100_000), st.integers(1, 60))
@settings(max_examples=200, deadline=None)
def test_requested_size_always_exact(seed, size):
    tree = random_tree(["A", "B", "C"], size=size, max_size=60, rng=seed)
    assert tree.size == size
