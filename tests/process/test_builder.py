"""WorkflowBuilder fluent API tests."""

import pytest

from repro.errors import ProcessError
from repro.process import (
    ChoiceNode,
    ForkNode,
    IterativeNode,
    TRUE,
    WorkflowBuilder,
    parse_condition,
    parse_process,
    unparse,
    validate_process,
)


def test_simple_sequence():
    ast = WorkflowBuilder("t").activities("A", "B", "C").ast()
    assert ast == parse_process("BEGIN; A; B; C; END")


def test_fork():
    ast = (
        WorkflowBuilder("t")
        .activity("A")
        .fork(lambda b: b.activity("B"), lambda b: b.activity("C"))
        .ast()
    )
    assert isinstance(ast.children[1], ForkNode)


def test_loop():
    cond = parse_condition("X.v > 1")
    ast = WorkflowBuilder("t").loop(cond, lambda b: b.activities("A", "B")).ast()
    assert isinstance(ast, IterativeNode)
    assert ast.condition == cond


def test_choice_default_branch():
    ast = (
        WorkflowBuilder("t")
        .choice(
            (parse_condition("X.v = 1"), lambda b: b.activity("A")),
            (None, lambda b: b.activity("B")),
        )
        .ast()
    )
    assert isinstance(ast, ChoiceNode)
    assert ast.branches[1][0] is TRUE


def test_build_produces_valid_graph():
    pd = (
        WorkflowBuilder("demo")
        .activity("A")
        .fork(lambda b: b.activity("B"), lambda b: b.activity("C"))
        .loop(parse_condition("X.v > 1"), lambda b: b.activity("D"))
        .build()
    )
    validate_process(pd)
    assert pd.name == "demo"


def test_figure10_via_builder():
    wf = (
        WorkflowBuilder("3DSD")
        .activities("POD", "P3DR1")
        .loop(
            parse_condition("D12.Value > 8"),
            lambda b: b.activity("POR")
            .fork(
                lambda f: f.activity("P3DR2"),
                lambda f: f.activity("P3DR3"),
                lambda f: f.activity("P3DR4"),
            )
            .activity("PSF"),
        )
    )
    expected = parse_process(
        "BEGIN; POD; P3DR1; {ITERATIVE {COND D12.Value > 8} "
        "{POR; {FORK {P3DR2} {P3DR3} {P3DR4} JOIN}; PSF}}; END"
    )
    assert wf.ast() == expected
    assert unparse(wf.ast()) == unparse(expected)


def test_empty_builder_rejected():
    with pytest.raises(ProcessError):
        WorkflowBuilder("t").ast()


def test_fork_needs_two_branches():
    with pytest.raises(ProcessError):
        WorkflowBuilder("t").fork(lambda b: b.activity("A"))


def test_sub_builder_must_return_itself():
    with pytest.raises(ProcessError):
        WorkflowBuilder("t").fork(
            lambda b: b.activity("A"),
            lambda b: WorkflowBuilder("other").activity("B"),
        )


def test_node_injection():
    inner = parse_process("BEGIN; A; B; END")
    ast = WorkflowBuilder("t").node(inner).activity("C").ast()
    assert ast.activity_names() == ["A", "B", "C"]
