"""ProcessDescription graph model tests."""

import pytest

from repro.errors import ProcessStructureError
from repro.process import Activity, ActivityKind, ProcessDescription
from repro.process.conditions import TRUE


@pytest.fixture
def pd():
    out = ProcessDescription("t")
    out.add("BEGIN", ActivityKind.BEGIN)
    out.add("A")
    out.add("B")
    out.add("END", ActivityKind.END)
    out.connect("BEGIN", "A")
    out.connect("A", "B")
    out.connect("B", "END")
    return out


class TestActivity:
    def test_end_user_defaults_service_to_name(self):
        assert Activity("POD").service_name == "POD"

    def test_shared_service(self):
        assert Activity("P3DR1", service="P3DR").service_name == "P3DR"

    def test_flow_control_has_no_service(self):
        with pytest.raises(ProcessStructureError):
            Activity("F", ActivityKind.FORK).service_name

    def test_flow_control_cannot_have_data(self):
        with pytest.raises(ProcessStructureError):
            Activity("F", ActivityKind.FORK, inputs=("D1",))

    def test_invalid_name(self):
        with pytest.raises(ProcessStructureError):
            Activity("9bad")


class TestGraph:
    def test_duplicate_activity_rejected(self, pd):
        with pytest.raises(ProcessStructureError):
            pd.add("A")

    def test_connect_unknown_endpoint(self, pd):
        with pytest.raises(ProcessStructureError):
            pd.connect("A", "nope")

    def test_duplicate_transition_rejected(self, pd):
        with pytest.raises(ProcessStructureError):
            pd.connect("A", "B")

    def test_transition_ids_generated(self, pd):
        ids = [t.id for t in pd.transitions]
        assert ids == ["TR1", "TR2", "TR3"]

    def test_degrees(self, pd):
        assert pd.in_degree("A") == 1
        assert pd.out_degree("A") == 1
        assert pd.successors("A") == ("B",)
        assert pd.predecessors("B") == ("A",)

    def test_begin_end_lookup(self, pd):
        assert pd.begin().name == "BEGIN"
        assert pd.end().name == "END"

    def test_begin_requires_uniqueness(self, pd):
        pd.add("BEGIN2", ActivityKind.BEGIN)
        with pytest.raises(ProcessStructureError):
            pd.begin()

    def test_remove_transition(self, pd):
        pd.remove_transition("TR2")
        assert pd.successors("A") == ()
        with pytest.raises(ProcessStructureError):
            pd.remove_transition("TR2")

    def test_set_condition(self, pd):
        tr = pd.set_condition("A", "B", TRUE)
        assert pd.transition_between("A", "B").condition is TRUE
        assert tr.id == "TR2"

    def test_census_helpers(self, pd):
        assert len(pd.end_user_activities()) == 2
        assert len(pd.flow_control_activities()) == 2

    def test_copy_is_independent(self, pd):
        clone = pd.copy("clone")
        clone.add("C")
        clone.connect("B", "C", id="TRX")
        assert not pd.has_activity("C")
        assert len(pd.transitions) == 3

    def test_to_networkx(self, pd):
        g = pd.to_networkx()
        assert set(g.nodes) == {"BEGIN", "A", "B", "END"}
        assert g.number_of_edges() == 3
        assert g.nodes["A"]["kind"] == "End-user"

    def test_iteration_and_len(self, pd):
        assert len(pd) == 4
        assert {a.name for a in pd} == {"BEGIN", "A", "B", "END"}
