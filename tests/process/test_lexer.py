"""Tokenizer tests."""

import pytest

from repro.errors import LexError
from repro.process.lexer import KEYWORDS, Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


def test_keywords_recognized():
    for kw in ("BEGIN", "END", "FORK", "JOIN", "ITERATIVE", "CHOICE", "MERGE", "COND"):
        token = tokenize(kw)[0]
        assert token.kind == TokenKind.KEYWORD
        assert token.text == kw


def test_names_vs_keywords():
    tokens = tokenize("BEGIN POD begin")
    assert tokens[0].kind == TokenKind.KEYWORD
    assert tokens[1].kind == TokenKind.NAME
    assert tokens[2].kind == TokenKind.NAME  # lowercase 'begin' is a name


def test_numbers():
    tokens = tokenize("42 3.14")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.NUMBER] * 2
    assert texts("42 3.14") == ["42", "3.14"]


def test_strings_strip_quotes():
    token = tokenize('"2D Image"')[0]
    assert token.kind == TokenKind.STRING
    assert token.text == "2D Image"


def test_punctuation():
    assert kinds("{ } ; , .")[:-1] == [
        TokenKind.LBRACE,
        TokenKind.RBRACE,
        TokenKind.SEP,
        TokenKind.SEP,
        TokenKind.DOT,
    ]


@pytest.mark.parametrize("rel", ["<", ">", "=", "!=", "<=", ">="])
def test_relations(rel):
    token = tokenize(rel)[0]
    assert token.kind == TokenKind.REL
    assert token.text == rel


def test_comments_skipped():
    tokens = tokenize("A # a comment\nB")
    assert texts("A # a comment\nB") == ["A", "B"]
    assert tokens[1].line == 2


def test_line_and_column_tracking():
    tokens = tokenize("A;\n  B")
    a, sep, b, eof = tokens
    assert (a.line, a.column) == (1, 1)
    assert (b.line, b.column) == (2, 3)


def test_eof_always_last():
    assert tokenize("")[-1].kind == TokenKind.EOF
    assert tokenize("A")[-1].kind == TokenKind.EOF


def test_unknown_character_raises_with_location():
    with pytest.raises(LexError) as err:
        tokenize("A;\n  @")
    assert err.value.line == 2
    assert err.value.column == 3


def test_hyphenated_names():
    assert tokenize("PD-3DSD")[0].text == "PD-3DSD"


def test_boolean_connectives_are_keywords():
    for word in ("and", "or", "not", "true"):
        assert word in KEYWORDS
        assert tokenize(word)[0].kind == TokenKind.KEYWORD
