"""Condition language: atoms, connectives, compilation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConditionError
from repro.process.conditions import (
    TRUE,
    And,
    Atom,
    MappingSource,
    Not,
    Or,
    Relation,
    compile_condition,
)

SRC = MappingSource(
    {
        "D1": {"Classification": "POD-Parameter", "Size": 3000},
        "D12": {"Classification": "Resolution File", "Value": 7.5},
    }
)


class TestAtom:
    def test_string_equality(self):
        assert Atom("D1", "Classification", Relation.EQ, "POD-Parameter").evaluate(SRC)

    def test_numeric_comparison(self):
        assert Atom("D12", "Value", Relation.LT, 8).evaluate(SRC)
        assert not Atom("D12", "Value", Relation.GT, 8).evaluate(SRC)

    def test_missing_data_is_false(self):
        assert not Atom("D99", "Value", Relation.EQ, 1).evaluate(SRC)

    def test_missing_property_is_false(self):
        assert not Atom("D1", "Value", Relation.EQ, 1).evaluate(SRC)

    def test_relation_from_string(self):
        atom = Atom("D1", "Size", "=", 3000)
        assert atom.relation is Relation.EQ
        assert atom.evaluate(SRC)

    def test_type_mismatch_comparison_false(self):
        assert not Atom("D1", "Classification", Relation.LT, 5).evaluate(SRC)

    def test_empty_names_rejected(self):
        with pytest.raises(ConditionError):
            Atom("", "x", Relation.EQ, 1)
        with pytest.raises(ConditionError):
            Atom("x", "", Relation.EQ, 1)

    def test_str_quotes_strings(self):
        text = str(Atom("D1", "Classification", Relation.EQ, "X Y"))
        assert text == 'D1.Classification = "X Y"'


class TestConnectives:
    def test_and(self):
        cond = Atom("D1", "Size", Relation.GT, 100) & Atom(
            "D12", "Value", Relation.LT, 8
        )
        assert cond.evaluate(SRC)

    def test_or(self):
        cond = Atom("D1", "Size", Relation.GT, 1e9) | Atom(
            "D12", "Value", Relation.LT, 8
        )
        assert cond.evaluate(SRC)

    def test_not(self):
        assert Not(Atom("D1", "Size", Relation.GT, 1e9)).evaluate(SRC)

    def test_true(self):
        assert TRUE.evaluate(SRC)

    def test_empty_and_rejected(self):
        with pytest.raises(ConditionError):
            And(())

    def test_empty_or_rejected(self):
        with pytest.raises(ConditionError):
            Or(())

    def test_data_names_collects_all(self):
        cond = Atom("A", "x", "=", 1) & (Atom("B", "y", "=", 2) | Atom("C", "z", "=", 3))
        assert cond.data_names() == {"A", "B", "C"}


class TestCompile:
    def test_single_atom(self):
        check = compile_condition(Atom("D12", "Value", Relation.LT, 8))
        assert check(SRC)

    def test_nested_and_flattened(self):
        cond = (
            Atom("D1", "Size", Relation.GT, 100)
            & Atom("D12", "Value", Relation.LT, 8)
            & Atom("D1", "Classification", Relation.EQ, "POD-Parameter")
        )
        check = compile_condition(cond)
        assert check(SRC)

    def test_compiled_matches_interpreted(self):
        conds = [
            Atom("D1", "Size", Relation.GE, 3000),
            Atom("D1", "Size", Relation.LE, 10),
            And((Atom("D1", "Size", Relation.GT, 1), Atom("D12", "Value", Relation.NE, 7.5))),
            Or((Atom("Dx", "y", Relation.EQ, 1), Atom("D12", "Value", Relation.EQ, 7.5))),
            Not(Atom("D1", "Size", Relation.EQ, 3000)),
            TRUE,
        ]
        for cond in conds:
            assert compile_condition(cond)(SRC) == cond.evaluate(SRC)

    def test_missing_data_compiled_false(self):
        check = compile_condition(Atom("D99", "x", Relation.EQ, 1))
        assert not check(SRC)


class TestRelationApply:
    """Direct unit coverage of Relation.apply, mixed types included."""

    def test_ne(self):
        assert Relation.NE.apply(1, 2)
        assert not Relation.NE.apply("a", "a")
        # Mixed types are simply unequal, never an error.
        assert Relation.NE.apply("a", 1)

    def test_le(self):
        assert Relation.LE.apply(2, 2)
        assert Relation.LE.apply(1, 2)
        assert not Relation.LE.apply(3, 2)

    def test_ge(self):
        assert Relation.GE.apply(2, 2)
        assert Relation.GE.apply(3, 2)
        assert not Relation.GE.apply(1, 2)

    @pytest.mark.parametrize(
        "relation", [Relation.LT, Relation.GT, Relation.LE, Relation.GE]
    )
    def test_uncomparable_mixed_types_are_false(self, relation):
        assert not relation.apply("text", 5)
        assert not relation.apply(5, "text")
        assert not relation.apply(None, 5)
        assert not relation.apply((1, 2), 5)

    def test_eq_mixed_types_are_unequal_not_error(self):
        assert not Relation.EQ.apply("5", 5)
        assert Relation.EQ.apply(5, 5.0)


class TestCompiledInterpretedConsistency:
    """The compiled closure must agree with Atom.evaluate everywhere —
    including None-valued properties, where the EQ fast path used to
    diverge (None is 'absent' per the paper's semantics)."""

    @pytest.mark.parametrize("value", [None, "x", 0, 1])
    @pytest.mark.parametrize("relation", list(Relation))
    def test_none_property_value(self, relation, value):
        src = MappingSource({"D": {"v": None}})
        atom = Atom("D", "v", relation, value)
        assert compile_condition(atom)(src) == atom.evaluate(src)
        assert not compile_condition(atom)(src)

    @pytest.mark.parametrize("relation", list(Relation))
    def test_mixed_type_operands(self, relation):
        src = MappingSource({"D": {"v": "text"}})
        atom = Atom("D", "v", relation, 5)
        assert compile_condition(atom)(src) == atom.evaluate(src)

    def test_conjunction_with_none_valued_member(self):
        src = MappingSource({"D": {"v": None, "w": 3}})
        cond = Atom("D", "w", Relation.EQ, 3) & Atom("D", "v", Relation.EQ, None)
        assert compile_condition(cond)(src) == cond.evaluate(src)
        assert not compile_condition(cond)(src)


@given(
    value=st.integers(-100, 100),
    threshold=st.integers(-100, 100),
    relation=st.sampled_from(list(Relation)),
)
def test_relation_semantics_match_python(value, threshold, relation):
    src = MappingSource({"D": {"v": value}})
    atom = Atom("D", "v", relation, threshold)
    expected = {
        Relation.EQ: value == threshold,
        Relation.NE: value != threshold,
        Relation.LT: value < threshold,
        Relation.GT: value > threshold,
        Relation.LE: value <= threshold,
        Relation.GE: value >= threshold,
    }[relation]
    assert atom.evaluate(src) == expected
    assert compile_condition(atom)(src) == expected
