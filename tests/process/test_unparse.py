"""Unparser round-trips, including a hypothesis property over random ASTs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.process import (
    ActivityNode,
    normalize_ast,
    Atom,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Relation,
    TRUE,
    parse_process,
    seq,
    unparse,
    unparse_pretty,
)

FIG10 = (
    "BEGIN; POD; P3DR1; "
    '{ITERATIVE {COND D12.Value > 8} '
    "{POR; {FORK {P3DR2} {P3DR3} {P3DR4} JOIN}; PSF}}; END"
)


def test_compact_roundtrip_fig10():
    ast = parse_process(FIG10)
    assert parse_process(unparse(ast)) == ast


def test_pretty_roundtrip_fig10():
    ast = parse_process(FIG10)
    assert parse_process(unparse_pretty(ast)) == ast


def test_string_values_quoted():
    text = 'BEGIN; {ITERATIVE {COND D.Classification = "2D Image"} {A}}; END'
    ast = parse_process(text)
    rendered = unparse(ast)
    assert '"2D Image"' in rendered
    assert parse_process(rendered) == ast


# -- random AST generation ---------------------------------------------------- #
_names = st.sampled_from(["A", "B", "C", "POD", "P3DR1", "X1"])
_conds = st.one_of(
    st.just(TRUE),
    st.builds(
        Atom,
        data=_names,
        property=st.sampled_from(["Size", "Value", "Classification"]),
        relation=st.sampled_from(list(Relation)),
        value=st.one_of(st.integers(0, 99), st.sampled_from(["ready", "2D Image"])),
    ),
)


def _ast_strategy():
    leaves = st.builds(ActivityNode, _names)

    def extend(children):
        return st.one_of(
            st.builds(
                lambda xs: seq(*xs),
                st.lists(children, min_size=2, max_size=4),
            ),
            st.builds(
                lambda xs: ForkNode(tuple(xs)),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda pairs: ChoiceNode(tuple(pairs)),
                st.lists(
                    st.tuples(_conds, children), min_size=2, max_size=3
                ),
            ),
            st.builds(IterativeNode, _conds, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@given(_ast_strategy())
@settings(max_examples=150, deadline=None)
def test_random_ast_roundtrip(ast):
    # Exact on normalized ASTs: the text form flattens nested sequences.
    assert parse_process(unparse(ast)) == normalize_ast(ast)


@given(_ast_strategy())
@settings(max_examples=60, deadline=None)
def test_pretty_agrees_with_compact(ast):
    assert parse_process(unparse_pretty(ast)) == parse_process(unparse(ast))
