"""Parser tests: the Section-2 grammar's concrete form."""

import pytest

from repro.errors import ParseError
from repro.process import (
    ActivityNode,
    And,
    Atom,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Or,
    Relation,
    SequenceNode,
    TRUE,
    parse_condition,
    parse_process,
    seq,
)


class TestBasics:
    def test_single_activity(self):
        assert parse_process("BEGIN; A; END") == ActivityNode("A")

    def test_sequence(self):
        ast = parse_process("BEGIN; A; B; C; END")
        assert isinstance(ast, SequenceNode)
        assert ast.activity_names() == ["A", "B", "C"]

    def test_commas_and_semicolons_interchangeable(self):
        assert parse_process("BEGIN, A, B, END") == parse_process("BEGIN; A; B; END")

    def test_trailing_separator_ok(self):
        assert parse_process("BEGIN; A; B; END") == parse_process("BEGIN; A; B;; END")

    def test_multiline_with_comments(self):
        text = """
        BEGIN;
          POD;        # orientation determination
          P3DR1;
        END
        """
        assert parse_process(text).activity_names() == ["POD", "P3DR1"]


class TestFork:
    def test_two_branches(self):
        ast = parse_process("BEGIN; {FORK {A} {B} JOIN}; END")
        assert ast == ForkNode((ActivityNode("A"), ActivityNode("B")))

    def test_branch_sequences(self):
        ast = parse_process("BEGIN; {FORK {A; B} {C} JOIN}; END")
        assert isinstance(ast, ForkNode)
        assert ast.branches[0] == seq("A", "B")

    def test_nested_fork(self):
        ast = parse_process("BEGIN; {FORK {A} {{FORK {B} {C} JOIN}} JOIN}; END")
        assert isinstance(ast.branches[1], ForkNode)

    def test_single_branch_rejected(self):
        with pytest.raises(ParseError):
            parse_process("BEGIN; {FORK {A} JOIN}; END")


class TestIterative:
    def test_simple_loop(self):
        ast = parse_process('BEGIN; {ITERATIVE {COND D.Value > 8} {A; B}}; END')
        assert isinstance(ast, IterativeNode)
        assert ast.condition == Atom("D", "Value", Relation.GT, 8)
        assert ast.body == seq("A", "B")

    def test_condition_list_is_conjunction(self):
        ast = parse_process(
            'BEGIN; {ITERATIVE {COND D.Value > 8; E.Size < 2} {A}}; END'
        )
        assert isinstance(ast.condition, And)
        assert len(ast.condition.parts) == 2


class TestChoice:
    def test_two_guarded_branches(self):
        ast = parse_process(
            'BEGIN; {CHOICE {COND X.Size > 1} {A} {COND true} {B} MERGE}; END'
        )
        assert isinstance(ast, ChoiceNode)
        (c1, b1), (c2, b2) = ast.branches
        assert c1 == Atom("X", "Size", Relation.GT, 1)
        assert c2 is TRUE
        assert (b1, b2) == (ActivityNode("A"), ActivityNode("B"))

    def test_single_alternative_rejected(self):
        with pytest.raises(ParseError):
            parse_process("BEGIN; {CHOICE {COND true} {A} MERGE}; END")


class TestConditions:
    def test_string_value(self):
        cond = parse_condition('D1.Classification = "POD-Parameter"')
        assert cond == Atom("D1", "Classification", Relation.EQ, "POD-Parameter")

    def test_and_or_precedence(self):
        cond = parse_condition("A.x = 1 and B.y = 2 or C.z = 3")
        # 'or' binds looser than 'and'
        assert isinstance(cond, Or)
        assert isinstance(cond.parts[0], And)

    def test_not(self):
        cond = parse_condition("not A.x = 1")
        assert not cond.evaluate_dummy if False else True  # structural check below
        from repro.process import Not

        assert isinstance(cond, Not)

    def test_float_and_int_values(self):
        assert parse_condition("A.x = 3.5") == Atom("A", "x", Relation.EQ, 3.5)
        assert parse_condition("A.x = 3") == Atom("A", "x", Relation.EQ, 3)

    def test_bare_name_value(self):
        assert parse_condition("A.x = ready") == Atom("A", "x", Relation.EQ, "ready")

    def test_keyword_property_allowed(self):
        # 'and' as a property name after the dot would be ambiguous; but
        # keywords like END can appear as property names.
        cond = parse_condition("A.END = 1")
        assert cond.property == "END"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "A; END",  # missing BEGIN
            "BEGIN; A",  # missing END
            "BEGIN; END",  # empty body
            "BEGIN; {FORK {A} {B}}; END",  # missing JOIN
            "BEGIN; {CHOICE {COND true} {A} {COND true} {B}}; END",  # missing MERGE
            "BEGIN; {WHILE {A}}; END",  # unknown block keyword
            "BEGIN; A; END; B",  # trailing garbage
            "BEGIN; {ITERATIVE {A}}; END",  # missing COND
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_process(text)

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as err:
            parse_process("BEGIN;\n A;\n {FORK {B} JOIN};\nEND")
        assert err.value.line >= 2


class TestFigure10:
    TEXT = (
        "BEGIN; POD; P3DR1; "
        '{ITERATIVE {COND D12.Value > 8} '
        "{POR; {FORK {P3DR2} {P3DR3} {P3DR4} JOIN}; PSF}}; END"
    )

    def test_shape(self):
        ast = parse_process(self.TEXT)
        assert ast.activity_names() == [
            "POD", "P3DR1", "POR", "P3DR2", "P3DR3", "P3DR4", "PSF",
        ]
        loop = ast.children[2]
        assert isinstance(loop, IterativeNode)
        fork = loop.body.children[1]
        assert isinstance(fork, ForkNode)
        assert len(fork.branches) == 3
