"""AST <-> graph conversion: elaboration, recovery, back edges, round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConversionError
from repro.process import (
    Activity,
    ActivityKind,
    ActivityNode,
    Atom,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    ProcessDescription,
    TRUE,
    ast_to_process,
    find_back_edges,
    normalize_ast,
    parse_process,
    process_to_ast,
    seq,
    validate_process,
)

FIG10 = (
    "BEGIN; POD; P3DR1; "
    '{ITERATIVE {COND D12.Value > 8} '
    "{POR; {FORK {P3DR2} {P3DR3} {P3DR4} JOIN}; PSF}}; END"
)


class TestElaboration:
    def test_sequential(self):
        pd = ast_to_process(parse_process("BEGIN; A; B; END"))
        assert pd.successors("BEGIN") == ("A",)
        assert pd.successors("A") == ("B",)
        assert pd.successors("B") == ("END",)

    def test_fork_join_pair_created(self):
        pd = ast_to_process(parse_process("BEGIN; {FORK {A} {B} JOIN}; END"))
        assert pd.activity("FORK1").kind is ActivityKind.FORK
        assert pd.activity("JOIN1").kind is ActivityKind.JOIN
        assert set(pd.successors("FORK1")) == {"A", "B"}
        assert set(pd.predecessors("JOIN1")) == {"A", "B"}

    def test_choice_merge_conditions_attached(self):
        pd = ast_to_process(
            parse_process(
                'BEGIN; {CHOICE {COND X.Size > 1} {A} {COND true} {B} MERGE}; END'
            )
        )
        tr = pd.transition_between("CHOICE1", "A")
        assert tr.condition == Atom("X", "Size", ">", 1)

    def test_loop_back_edge(self):
        pd = ast_to_process(
            parse_process('BEGIN; {ITERATIVE {COND X.Size > 1} {A}}; END')
        )
        # merge-first topology: MERGE1 -> A -> CHOICE1 -> {MERGE1, END}
        assert pd.successors("MERGE1") == ("A",)
        assert set(pd.successors("CHOICE1")) == {"MERGE1", "END"}
        assert find_back_edges(pd) == [("CHOICE1", "MERGE1")]

    def test_duplicate_activity_name_rejected(self):
        with pytest.raises(ConversionError):
            ast_to_process(parse_process("BEGIN; A; A; END"))

    def test_library_binding(self):
        lib = {"A": Activity("A", service="SVC", inputs=("D1",), outputs=("D2",))}
        pd = ast_to_process(parse_process("BEGIN; A; END"), library=lib)
        assert pd.activity("A").service == "SVC"
        assert pd.activity("A").inputs == ("D1",)

    def test_fig10_census(self):
        pd = ast_to_process(parse_process(FIG10), name="3DSD")
        assert len(pd.end_user_activities()) == 7
        assert len(pd.flow_control_activities()) == 6
        assert len(pd.transitions) == 15
        validate_process(pd)


class TestRecovery:
    @pytest.mark.parametrize(
        "text",
        [
            "BEGIN; A; END",
            "BEGIN; A; B; C; END",
            "BEGIN; {FORK {A} {B} JOIN}; END",
            "BEGIN; {FORK {A; B} {C} {D} JOIN}; END",
            'BEGIN; {CHOICE {COND X.Size > 1} {A} {COND true} {B} MERGE}; END',
            'BEGIN; {ITERATIVE {COND X.Size > 1} {A; B}}; END',
            FIG10,
            # nested constructs
            "BEGIN; {FORK {{FORK {A} {B} JOIN}} {C} JOIN}; END",
            'BEGIN; {ITERATIVE {COND X.v > 1} {{ITERATIVE {COND Y.v > 1} {A}}}}; END',
            'BEGIN; {CHOICE {COND true} {{FORK {A} {B} JOIN}} {COND true} {C} MERGE}; D; END',
        ],
    )
    def test_roundtrip(self, text):
        ast = parse_process(text)
        pd = ast_to_process(ast)
        assert process_to_ast(pd) == normalize_ast(ast)

    def test_loop_containing_choice(self):
        text = (
            'BEGIN; {ITERATIVE {COND X.v > 1} '
            '{{CHOICE {COND Y.v = 1} {A} {COND true} {B} MERGE}; C}}; END'
        )
        ast = parse_process(text)
        pd = ast_to_process(ast)
        assert process_to_ast(pd) == normalize_ast(ast)

    def test_unstructured_fork_rejected(self):
        pd = ProcessDescription("bad")
        pd.add("BEGIN", ActivityKind.BEGIN)
        pd.add("END", ActivityKind.END)
        pd.add("F", ActivityKind.FORK)
        pd.add("A")
        pd.add("B")
        pd.add("J1", ActivityKind.JOIN)
        pd.add("J2", ActivityKind.JOIN)
        pd.add("C")
        pd.add("D")
        pd.connect("BEGIN", "F")
        pd.connect("F", "A")
        pd.connect("F", "B")
        pd.connect("A", "J1")
        pd.connect("B", "J2")
        pd.connect("C", "J1")
        pd.connect("D", "J2")
        pd.connect("J1", "END")  # branches converge on different joins
        with pytest.raises(ConversionError):
            process_to_ast(pd)

    def test_empty_branch_rejected(self):
        pd = ProcessDescription("bad")
        pd.add("BEGIN", ActivityKind.BEGIN)
        pd.add("END", ActivityKind.END)
        pd.add("F", ActivityKind.FORK)
        pd.add("A")
        pd.add("J", ActivityKind.JOIN)
        pd.connect("BEGIN", "F")
        pd.connect("F", "A")
        pd.connect("F", "J")  # empty branch straight to join
        pd.connect("A", "J")
        pd.connect("J", "END")
        with pytest.raises(ConversionError):
            process_to_ast(pd)

    def test_back_edge_not_choice_to_merge_rejected(self):
        pd = ProcessDescription("bad")
        pd.add("BEGIN", ActivityKind.BEGIN)
        pd.add("END", ActivityKind.END)
        pd.add("M", ActivityKind.MERGE)
        pd.add("A")
        pd.add("B")
        pd.connect("BEGIN", "M")
        pd.connect("M", "A")
        pd.connect("A", "B")
        pd.connect("B", "M")  # back edge from an end-user activity
        pd.connect("A", "END")  # (also makes A out-degree 2, unstructured)
        with pytest.raises(ConversionError):
            process_to_ast(pd)


# -- property: elaborate-then-recover is identity on normalized ASTs ----------- #
_names = st.sampled_from([f"N{i}" for i in range(40)])
_conds = st.one_of(
    st.just(TRUE),
    st.builds(Atom, _names, st.just("Size"), st.just(">"), st.integers(0, 9)),
)


@st.composite
def _unique_ast(draw):
    """Random AST with globally unique activity names (graph requirement)."""
    counter = [0]

    def fresh_leaf():
        counter[0] += 1
        return ActivityNode(f"U{counter[0]}")

    def build(depth):
        if depth == 0 or draw(st.integers(0, 2)) == 0:
            return fresh_leaf()
        kind = draw(st.sampled_from(["seq", "fork", "choice", "iter"]))
        if kind == "seq":
            return seq(*[build(depth - 1) for _ in range(draw(st.integers(2, 4)))])
        if kind == "fork":
            return ForkNode(
                tuple(build(depth - 1) for _ in range(draw(st.integers(2, 3))))
            )
        if kind == "choice":
            return ChoiceNode(
                tuple(
                    (draw(_conds), build(depth - 1))
                    for _ in range(draw(st.integers(2, 3)))
                )
            )
        return IterativeNode(draw(_conds), build(depth - 1))

    return build(3)


@given(_unique_ast())
@settings(max_examples=120, deadline=None)
def test_elaborate_recover_identity(ast):
    pd = ast_to_process(ast)
    validate_process(pd)
    assert process_to_ast(pd) == normalize_ast(ast)
