"""DOT export tests."""

from repro.plan import iterative, sequential
from repro.process.dot import plan_tree_to_dot, process_to_dot
from repro.virolab import plan_tree, process_description


def test_process_dot_contains_all_nodes_and_edges():
    pd = process_description()
    dot = process_to_dot(pd)
    assert dot.startswith('digraph "PD-3DSD"')
    for activity in pd.activities:
        assert f'"{activity.name}"' in dot
    assert dot.count("->") == len(pd.transitions)


def test_process_dot_shapes_by_kind():
    dot = process_to_dot(process_description())
    assert 'shape=triangle' in dot        # FORK
    assert 'shape=diamond' in dot         # CHOICE
    assert 'shape=doublecircle' in dot    # END


def test_process_dot_conditions_dashed_and_labelled():
    dot = process_to_dot(process_description())
    assert "style=dashed" in dot
    assert "TR14" in dot and "D12.Value > 8" in dot


def test_process_dot_service_label_for_shared_services():
    dot = process_to_dot(process_description())
    assert "(P3DR)" in dot  # P3DR1..4 share the P3DR service


def test_plan_tree_dot_shape():
    dot = plan_tree_to_dot(plan_tree(), name="fig11")
    assert dot.startswith('digraph "fig11"')
    # 10 nodes, 9 parent-child edges
    assert dot.count("->") == 9
    assert dot.count("shape=box") == 7
    assert dot.count("shape=ellipse") == 3


def test_dot_quoting():
    tree = sequential("A", iterative("B"))
    dot = plan_tree_to_dot(tree)
    assert '"Sequential"' in dot and '"Iterative"' in dot
