"""Structural validation rules (Section 3.1 degree constraints etc.)."""

import pytest

from repro.errors import ProcessStructureError
from repro.process import (
    ActivityKind,
    ProcessDescription,
    TRUE,
    check_process,
    parse_process,
    ast_to_process,
    validate_process,
)


def minimal():
    pd = ProcessDescription("min")
    pd.add("BEGIN", ActivityKind.BEGIN)
    pd.add("A")
    pd.add("END", ActivityKind.END)
    pd.connect("BEGIN", "A")
    pd.connect("A", "END")
    return pd


def test_minimal_valid():
    validate_process(minimal())
    assert check_process(minimal()) == []


def test_missing_begin():
    pd = ProcessDescription("x")
    pd.add("A")
    pd.add("END", ActivityKind.END)
    pd.connect("A", "END")
    problems = check_process(pd)
    assert any("Begin" in p for p in problems)


def test_two_ends():
    pd = minimal()
    pd.add("END2", ActivityKind.END)
    problems = check_process(pd)
    assert any("one End" in p for p in problems)


def test_end_user_degree_rule():
    pd = minimal()
    pd.add("B")
    pd.connect("A", "B")  # A now has out-degree 2; B has no successor
    problems = check_process(pd)
    assert any("'A'" in p and "out-degree" in p for p in problems)


def test_fork_needs_two_successors():
    pd = ProcessDescription("x")
    pd.add("BEGIN", ActivityKind.BEGIN)
    pd.add("F", ActivityKind.FORK)
    pd.add("A")
    pd.add("END", ActivityKind.END)
    pd.connect("BEGIN", "F")
    pd.connect("F", "A")
    pd.connect("A", "END")
    problems = check_process(pd)
    assert any("'F'" in p for p in problems)


def test_unreachable_activity_detected():
    pd = minimal()
    pd.add("orphan")
    problems = check_process(pd)
    assert any("unreachable" in p.lower() for p in problems)
    assert any("cannot reach End" in p for p in problems)


def test_condition_only_on_choice_transitions():
    pd = minimal()
    pd.set_condition("A", "END", TRUE)
    problems = check_process(pd)
    assert any("condition" in p for p in problems)


def test_structured_check_catches_bad_pairing():
    # Fork closed by a Merge instead of a Join.
    pd = ProcessDescription("x")
    pd.add("BEGIN", ActivityKind.BEGIN)
    pd.add("F", ActivityKind.FORK)
    pd.add("A")
    pd.add("B")
    pd.add("M", ActivityKind.MERGE)
    pd.add("END", ActivityKind.END)
    pd.connect("BEGIN", "F")
    pd.connect("F", "A")
    pd.connect("F", "B")
    pd.connect("A", "M")
    pd.connect("B", "M")
    pd.connect("M", "END")
    problems = check_process(pd)
    assert any("well-structured" in p for p in problems)
    # Degree rules alone are satisfied:
    assert check_process(pd, structured=False) == []


def test_validate_raises_with_all_problems():
    pd = ProcessDescription("x")
    pd.add("A")
    with pytest.raises(ProcessStructureError) as err:
        validate_process(pd)
    assert "invalid" in str(err.value)


def test_figure10_text_is_valid():
    pd = ast_to_process(
        parse_process(
            "BEGIN; POD; P3DR1; {ITERATIVE {COND D12.Value > 8} "
            "{POR; {FORK {P3DR2} {P3DR3} {P3DR4} JOIN}; PSF}}; END"
        )
    )
    validate_process(pd)
