"""End-to-end observability: a real enactment, inspected over RPC.

Acceptance path for the message-bus refactor: run a full
coordination-driven enactment on the standard environment, then — through
the **monitoring service**, i.e. over the simulated network itself —
reconstruct the multi-hop causal trace tree and read non-zero RPC latency
histograms.
"""

import pytest

from repro.grid import Agent
from repro.planner import GPConfig
from repro.services import standard_environment
from repro.virolab import planning_problem
from tests.services.conftest import drive, synthetic_services


@pytest.fixture(scope="module")
def enacted():
    """One completed enactment plus a user agent for follow-up queries."""
    env, services, fleet = standard_environment(
        synthetic_services(),
        containers=3,
        planner_config=GPConfig(population_size=30, generations=5),
    )
    user = Agent(env, "observer", "user")
    reply = drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {
                "problem": planning_problem(),
                "task": "observed-task",
                "initial_data": {
                    "D1": {"Classification": "POD-Parameter"},
                    "D2": {"Classification": "Micrograph"},
                },
            },
        ),
    )
    assert reply["status"] == "completed"
    return env, services, user


class TestMetricsOverRpc:
    def test_latency_histograms_are_nonzero(self, enacted):
        env, services, user = enacted
        dump = drive(
            env, user, lambda: user.call("monitoring", "metrics", {"name": "rpc_latency"})
        )
        latencies = dump["histograms"]["rpc_latency"]
        assert latencies, "no rpc_latency series recorded"
        # The coordination -> container execution path must show real time.
        totals = {key: stats for key, stats in latencies.items()}
        assert any(stats["count"] > 0 and stats["sum"] > 0 for stats in totals.values())
        execute = [
            stats for key, stats in totals.items() if key.endswith("|execute-activity")
        ]
        assert execute and all(stats["mean"] > 0 for stats in execute)

    def test_counters_cover_the_enactment(self, enacted):
        env, services, user = enacted
        dump = drive(env, user, lambda: user.call("monitoring", "metrics", {}))
        counters = dump["counters"]
        assert counters["enactments_completed"]["coordination|observed-task"] == 1
        assert sum(counters["rpc_ok"].values()) > 10
        assert sum(counters["requests_handled"].values()) > 10
        assert sum(counters["activities_completed"].values()) >= 1

    def test_census_uses_exact_totals(self, enacted):
        env, services, user = enacted
        census = drive(env, user, lambda: user.call("monitoring", "census", {}))
        # The handler snapshots totals before its own reply is delivered,
        # so the live trace is exactly one event ahead.
        assert census["messages_delivered"] == env.trace.total_recorded - 1
        assert census["messages_sent"] >= census["messages_delivered"]


class TestTraceTreeOverRpc:
    def test_enactment_reconstructs_as_multi_hop_tree(self, enacted):
        env, services, user = enacted
        # The enactment's trace is the one rooted at observer -> coordination.
        root_event = next(
            e
            for e in env.trace.records
            if e.message.sender == "observer" and e.message.action == "execute-task"
        )
        tree = drive(
            env,
            user,
            lambda: user.call(
                "monitoring", "trace-tree", {"trace_id": root_event.trace_id}
            ),
        )
        assert tree["roots"] == 1
        # Multi-hop: coordination fans out to matchmaking / scheduling /
        # containers / brokerage, each with nested RPCs of its own.
        assert tree["depth"] >= 4
        assert tree["size"] > 20
        senders = {node["sender"] for node in tree["nodes"]}
        assert {"observer", "coordination", "matchmaking", "scheduling"} <= senders
        assert "coordination -> matchmaking request match" in tree["rendered"]
        # Depths in the flattened walk match the rendered indentation.
        assert tree["nodes"][0]["depth"] == 0
        assert max(node["depth"] for node in tree["nodes"]) == tree["depth"] - 1

    def test_trace_query_filters_by_conversation(self, enacted):
        env, services, user = enacted
        sample = env.trace.records[0].message
        reply = drive(
            env,
            user,
            lambda: user.call(
                "monitoring", "trace", {"conversation": sample.conversation}
            ),
        )
        # One event ahead: the reply carrying this snapshot (see census test).
        assert reply["total_recorded"] == env.trace.total_recorded - 1
        assert all(e["conversation"] == sample.conversation for e in reply["events"])
        assert reply["events"], "conversation filter returned nothing"
