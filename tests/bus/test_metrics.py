"""MetricsRegistry: counters, histograms, dumps."""

from repro.bus import LatencyHistogram, MetricsRegistry


class TestLatencyHistogram:
    def test_accounting(self):
        h = LatencyHistogram()
        for v in (0.001, 0.01, 0.1, 1.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 1.111
        assert h.min == 0.001 and h.max == 1.0
        assert h.mean == 1.111 / 4

    def test_quantiles_bound_observations(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.observe(0.002)
        h.observe(25_000.0)
        assert h.quantile(0.5) <= 0.003
        # Quantiles report the upper bound of the holding bucket.
        assert h.quantile(0.99) <= 30_000.0
        assert h.quantile(1.0) >= h.max

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.mean == 0.0 and h.quantile(0.5) == 0.0
        assert h.as_dict()["count"] == 0 and h.as_dict()["min"] == 0.0

    def test_overflow_bucket(self):
        h = LatencyHistogram()
        h.observe(1e9)  # beyond every bound
        assert h.buckets[-1] == 1

    def test_quantile_clamped_to_observed_range(self):
        h = LatencyHistogram()
        h.observe(5.0)  # lands in the <=10.0 bucket
        # The nominal bucket bound (10.0) exceeds the only observation;
        # every quantile must stay inside [min, max] = [5, 5].
        assert h.quantile(0.5) == 5.0
        assert h.quantile(0.99) == 5.0
        h.observe(7.0)  # same bucket, max now 7
        assert h.quantile(0.5) == 7.0
        # ...and the clamp never reports below the observed minimum
        low = LatencyHistogram()
        low.observe(0.5)
        low.observe(8.0)
        assert low.quantile(0.01) >= 0.5


class TestMetricsRegistry:
    def test_counters_keyed_by_agent_and_action(self):
        m = MetricsRegistry()
        m.inc("rpc_ok", agent="planner", action="plan")
        m.inc("rpc_ok", agent="planner", action="plan")
        m.inc("rpc_ok", agent="broker", action="find")
        assert m.value("rpc_ok", agent="planner", action="plan") == 2
        assert m.value("rpc_ok", agent="missing") == 0
        assert m.total("rpc_ok") == 3
        assert m.total("rpc_ok", agent="broker") == 1

    def test_observe_creates_histograms(self):
        m = MetricsRegistry()
        m.observe("rpc_latency", 0.5, agent="planner", action="plan")
        m.observe("rpc_latency", 1.5, agent="planner", action="plan")
        h = m.histogram("rpc_latency", agent="planner", action="plan")
        assert h is not None and h.count == 2
        assert [a for a, _, _ in m.histograms("rpc_latency")] == ["planner"]

    def test_dump_shape_and_filters(self):
        m = MetricsRegistry()
        m.inc("rpc_ok", agent="planner", action="plan")
        m.inc("rpc_ok", agent="broker", action="find")
        m.observe("rpc_latency", 0.25, agent="planner", action="plan")
        dump = m.dump()
        assert dump["counters"]["rpc_ok"] == {
            "broker|find": 1,
            "planner|plan": 1,
        }
        assert dump["histograms"]["rpc_latency"]["planner|plan"]["count"] == 1
        only_planner = m.dump(agent="planner")
        assert "broker|find" not in only_planner["counters"]["rpc_ok"]
        only_latency = m.dump(name="rpc_latency")
        assert "rpc_ok" not in only_latency["counters"]

    def test_clear(self):
        m = MetricsRegistry()
        m.inc("x")
        m.observe("y", 1.0)
        m.clear()
        assert m.dump() == {"counters": {}, "histograms": {}}
