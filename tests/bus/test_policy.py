"""CallPolicy: timeouts (the _TIMEOUT sentinel path), retries, failover."""

import pytest

from repro.bus import CallPolicy
from repro.errors import GridError, ServiceError
from repro.grid import Agent, GridEnvironment
from repro.services.base import CoreService
from repro.sim.failures import BernoulliFailures


class TestPolicyObject:
    def test_defaults_match_legacy_behaviour(self):
        policy = CallPolicy()
        assert policy.timeout is None
        assert policy.attempts == 1
        assert policy.size == 1_000.0

    def test_validation(self):
        with pytest.raises(GridError):
            CallPolicy(timeout=0.0)
        with pytest.raises(GridError):
            CallPolicy(retries=-1)
        with pytest.raises(GridError):
            CallPolicy(backoff=-1.0)
        with pytest.raises(GridError):
            CallPolicy(backoff_factor=0.0)
        with pytest.raises(GridError):
            CallPolicy(size=-1.0)

    def test_deterministic_exponential_backoff(self):
        policy = CallPolicy(retries=3, backoff=2.0, backoff_factor=3.0)
        assert policy.backoff_before(0) == 0.0
        assert policy.backoff_before(1) == 2.0
        assert policy.backoff_before(2) == 6.0
        assert policy.backoff_before(3) == 18.0

    def test_with_timeout(self):
        policy = CallPolicy(retries=2).with_timeout(5.0)
        assert policy.timeout == 5.0 and policy.retries == 2


class Flaky(Agent):
    """Fails the first *failures_left* requests, then answers."""

    def __init__(self, env, name, site, failures_left=0):
        super().__init__(env, name, site)
        self.failures_left = failures_left
        self.calls = 0

    def handle_work(self, message):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise ServiceError(f"{self.name} transient failure")
        return {"worker": self.name}


class Silent(Agent):
    """Never replies (handler parks forever) — forces the timeout path."""

    def __init__(self, env, name, site):
        super().__init__(env, name, site)
        self.requests_seen = 0

    def handle_work(self, message):
        self.requests_seen += 1
        yield 1e9
        return {}


def drive(env, fn):
    out = {}

    def main():
        try:
            out["result"] = yield from fn()
        except ServiceError as exc:
            out["error"] = str(exc)
        out["at"] = env.engine.now  # when the call settled (sim time)

    env.engine.spawn(main(), "driver")
    env.run(max_events=100_000)
    return out


class TestTimeoutSentinel:
    def test_timeout_fires_and_raises(self):
        env = GridEnvironment()
        silent = Silent(env, "srv", "s1")
        user = Agent(env, "user", "s2")
        out = drive(env, lambda: user.call("srv", "work", timeout=10.0))
        assert "timed out after 10.0s" in out["error"]
        assert silent.requests_seen == 1
        assert env.metrics.value("rpc_timeout", agent="srv", action="work") == 1
        # The caller gave up at exactly the timeout, not at the handler's 1e9.
        assert out["at"] == pytest.approx(10.0, abs=1.0)

    def test_late_reply_goes_to_on_unhandled(self):
        env = GridEnvironment()

        class Slow(Agent):
            def handle_work(self, message):
                yield 50.0
                return {"late": True}

        class Caller(Agent):
            def __init__(self, env, name, site):
                super().__init__(env, name, site)
                self.unhandled = []

            def on_unhandled(self, message):
                self.unhandled.append(message)

        Slow(env, "srv", "s1")
        user = Caller(env, "user", "s2")
        out = drive(env, lambda: user.call("srv", "work", timeout=10.0))
        assert "timed out" in out["error"]
        env.run()  # let the stale INFORM arrive
        assert [m.action for m in user.unhandled] == ["work"]


class TestRetries:
    def test_retries_until_success(self):
        env = GridEnvironment()
        worker = Flaky(env, "srv", "s1", failures_left=2)
        user = Agent(env, "user", "s2")
        policy = CallPolicy(retries=2)
        out = drive(env, lambda: user.call("srv", "work", policy=policy))
        assert out["result"] == {"worker": "srv"}
        assert worker.calls == 3
        assert env.metrics.value("rpc_retry", agent="srv", action="work") == 2
        assert env.metrics.value("rpc_error", agent="srv", action="work") == 2
        assert env.metrics.value("rpc_ok", agent="srv", action="work") == 1

    def test_retries_exhausted_raises_last_error(self):
        env = GridEnvironment()
        worker = Flaky(env, "srv", "s1", failures_left=10)
        user = Agent(env, "user", "s2")
        out = drive(env, lambda: user.call("srv", "work", policy=CallPolicy(retries=1)))
        assert "transient failure" in out["error"]
        assert worker.calls == 2

    def test_backoff_timing_is_deterministic(self):
        env = GridEnvironment()
        Flaky(env, "srv", "s1", failures_left=2)
        user = Agent(env, "user", "s2")
        policy = CallPolicy(retries=2, backoff=100.0, backoff_factor=2.0)
        out = drive(env, lambda: user.call("srv", "work", policy=policy))
        assert "result" in out
        # Two backoff pauses: 100 before retry 1, 200 before retry 2 — the
        # round trips themselves take well under a second each.
        assert 300.0 < out["at"] < 301.0


class TestFailover:
    def test_failover_preserves_provider_order(self):
        env = GridEnvironment()
        first = Flaky(env, "p1", "s1", failures_left=10)  # always fails
        second = Flaky(env, "p2", "s1")
        third = Flaky(env, "p3", "s1")
        user = Agent(env, "user", "s2")
        out = drive(env, lambda: user.call_any(["p1", "p2", "p3"], "work"))
        assert out["result"] == {"worker": "p2"}
        assert (first.calls, second.calls, third.calls) == (1, 1, 0)
        assert env.metrics.value("rpc_failover", agent="p2", action="work") == 1
        assert env.metrics.value("rpc_failover", agent="p3", action="work") == 0

    def test_failover_under_injected_message_loss(self):
        """A lossy fabric (Bernoulli drop oracle) silences the primary; the
        policy timeout detects it and failover lands on the replica."""
        env = GridEnvironment()
        primary = Flaky(env, "p1", "s1")
        replica = Flaky(env, "p2", "s1")
        user = Agent(env, "user", "s2")
        env.router.use_bernoulli(
            BernoulliFailures(per_component={"p1": 1.0}, rng=1)
        )
        policy = CallPolicy(timeout=5.0)
        out = drive(env, lambda: user.call_any(["p1", "p2"], "work", policy=policy))
        assert out["result"] == {"worker": "p2"}
        assert primary.calls == 0  # the request to p1 never arrived
        assert replica.calls == 1
        assert env.metrics.value("rpc_timeout", agent="p1", action="work") == 1
        assert env.metrics.value("drop_reason", agent="oracle") == 1

    def test_no_providers_raises(self):
        env = GridEnvironment()
        user = Agent(env, "user", "s2")
        out = drive(env, lambda: user.call_any([], "work"))
        assert "no providers" in out["error"]

    def test_core_service_call_with_failover_compat(self):
        """The historical CoreService entry point survives as a wrapper."""
        env = GridEnvironment()

        class Core(CoreService):
            service_type = "simulation"

        core = Core(env)
        Flaky(env, "p1", "s1", failures_left=10)
        Flaky(env, "p2", "s1")
        out = drive(
            env, lambda: core.call_with_failover(["p1", "p2"], "work", timeout=30.0)
        )
        assert out["result"] == {"worker": "p2"}
