"""Bounded trace accounting and causal call-tree reconstruction."""

import pytest

from repro.bus import MessageTrace
from repro.grid import Agent, GridEnvironment, Message, Performative


def msg(i=0, **kwargs):
    defaults = dict(
        sender="a",
        receiver="b",
        performative=Performative.REQUEST,
        action=f"act{i}",
    )
    defaults.update(kwargs)
    return Message(**defaults)


class TestBoundedTrace:
    def test_capacity_evicts_but_total_is_exact(self):
        trace = MessageTrace(capacity=3)
        for i in range(10):
            trace.record(float(i), msg(i))
        assert len(trace) == 3
        assert trace.total_recorded == 10
        assert trace.evicted == 7
        # The resident window holds the newest events.
        assert [e.message.action for e in trace.records] == ["act7", "act8", "act9"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MessageTrace(capacity=0)
        MessageTrace(capacity=None)  # unbounded is allowed

    def test_between_and_actions_semantics(self):
        trace = MessageTrace()
        trace.record(0.0, msg(1))
        trace.record(1.0, msg(2, sender="b", receiver="a"))
        trace.record(2.0, msg(3))
        assert [m.action for m in trace.between("a", "b")] == ["act1", "act3"]
        assert trace.actions() == [
            ("a", "b", "request", "act1"),
            ("b", "a", "request", "act2"),
            ("a", "b", "request", "act3"),
        ]

    def test_clear_resets_totals(self):
        trace = MessageTrace(capacity=2)
        for i in range(5):
            trace.record(float(i), msg(i))
        trace.clear()
        assert len(trace) == 0 and trace.total_recorded == 0 and trace.evicted == 0

    def test_environment_accepts_trace_capacity(self):
        env = GridEnvironment(trace_capacity=2)
        assert env.trace.capacity == 2


class Relay(Agent):
    """a -> relay -> leaf: a two-hop chain for tree reconstruction."""

    def handle_front(self, message):
        result = yield from self.call("leaf", "back", {"n": 1})
        return {"via": result}


class Leaf(Agent):
    def handle_back(self, message):
        return {"leaf": True}


class TestCausalTree:
    def test_multi_hop_chain_reconstructs_as_tree(self):
        env = GridEnvironment()
        Relay(env, "relay", "s1")
        Leaf(env, "leaf", "s2")
        user = Agent(env, "user", "s3")
        out = {}

        def main():
            out["r"] = yield from user.call("relay", "front")

        env.engine.spawn(main(), "driver")
        env.run()
        assert out["r"]["via"] == {"leaf": True}

        trace_ids = env.trace.trace_ids()
        assert len(trace_ids) == 1  # the whole exchange is one trace
        roots = env.trace.tree(trace_ids[0])
        assert len(roots) == 1
        root = roots[0]
        # user->relay REQUEST at the root; downstream: relay->leaf REQUEST,
        # leaf->relay INFORM, relay->user INFORM all inside the same tree.
        assert root.event.action_tuple() == ("user", "relay", "request", "front")
        assert root.size == 4
        assert root.depth >= 3
        rendered = env.trace.render(trace_ids[0])
        assert "user -> relay request front" in rendered
        assert "relay -> leaf request back" in rendered

    def test_unrelated_calls_get_separate_traces(self):
        env = GridEnvironment()
        Leaf(env, "leaf", "s1")
        user = Agent(env, "user", "s2")

        def main():
            yield from user.call("leaf", "back")
            yield from user.call("leaf", "back")

        env.engine.spawn(main(), "driver")
        env.run()
        assert len(env.trace.trace_ids()) == 2

    def test_fork_branches_stay_in_scope(self):
        """Processes spawned with spawn_scoped inherit the causal scope, so
        concurrent branches appear inside the requesting trace."""
        env = GridEnvironment()

        class Forker(Agent):
            def handle_fanout(self, message):
                def branch():
                    result = yield from self.call("leaf", "back")
                    return result

                handles = [
                    self.spawn_scoped(branch(), name=f"branch{i}") for i in range(2)
                ]
                for handle in handles:
                    yield handle
                return {"done": True}

        Forker(env, "forker", "s1")
        Leaf(env, "leaf", "s2")
        user = Agent(env, "user", "s3")

        def main():
            yield from user.call("forker", "fanout")

        env.engine.spawn(main(), "driver")
        env.run()
        trace_ids = env.trace.trace_ids()
        assert len(trace_ids) == 1
        roots = env.trace.tree(trace_ids[0])
        assert len(roots) == 1
        # root + 2*(request+reply) to leaf + final reply = 6 events.
        assert roots[0].size == 6

    def test_tree_degrades_gracefully_under_eviction(self):
        env = GridEnvironment(trace_capacity=2)
        Relay(env, "relay", "s1")
        Leaf(env, "leaf", "s2")
        user = Agent(env, "user", "s3")

        def main():
            yield from user.call("relay", "front")

        env.engine.spawn(main(), "driver")
        env.run()
        assert env.trace.evicted == 2
        (trace_id,) = env.trace.trace_ids()
        roots = env.trace.tree(trace_id)
        # Orphaned events (parents evicted) surface as roots, not errors.
        assert sum(r.size for r in roots) == 2
