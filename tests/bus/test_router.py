"""Router: identity streams, delivery, drop accounting, failure injection."""

from repro.grid import Agent, GridEnvironment, Message, Performative
from repro.sim.failures import BernoulliFailures


def msg(**kwargs):
    defaults = dict(
        sender="a",
        receiver="b",
        performative=Performative.REQUEST,
        action="do",
    )
    defaults.update(kwargs)
    return Message(**defaults)


class Echo(Agent):
    def handle_echo(self, message):
        return {"echo": message.content.get("text", "")}


class TestIdentity:
    def test_conversation_streams_are_per_router(self):
        one, two = GridEnvironment(), GridEnvironment()
        a, b = msg(), msg()
        one.route(a)
        one.route(b)
        assert (a.conversation, b.conversation) == ("conv-1", "conv-2")
        c = msg()
        two.route(c)
        assert c.conversation == "conv-1"  # independent stream, no leakage

    def test_message_ids_unique_and_idempotent(self):
        env = GridEnvironment()
        a, b = msg(), msg()
        env.route(a)
        env.route(b)
        assert a.message_id != b.message_id
        before = a.message_id
        env.router.prepare(a)  # idempotent: re-preparing never reassigns
        assert a.message_id == before

    def test_root_messages_open_fresh_traces(self):
        env = GridEnvironment()
        a, b = msg(), msg()
        env.route(a)
        env.route(b)
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_cause_links_trace_and_parent(self):
        env = GridEnvironment()
        root, child = msg(), msg(sender="b", receiver="a")
        env.route(root)
        env.route(child, cause=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.message_id


class TestDelivery:
    def test_delivery_records_trace_and_metrics(self):
        env = GridEnvironment()
        Echo(env, "b", "site")
        Agent(env, "a", "site")
        env.route(msg(action="echo"))
        env.run()
        assert ("a", "b", "request", "echo") in env.trace.actions()
        assert env.metrics.value("messages_sent", agent="a", action="echo") == 1
        assert env.metrics.value("messages_delivered", agent="b", action="echo") == 1

    def test_unknown_receiver_dropped(self):
        env = GridEnvironment()
        env.route(msg(receiver="ghost"))
        assert len(env.dropped) == 1
        assert env.metrics.value("drop_reason", agent="unknown-receiver") == 1
        assert env.trace.total_recorded == 0

    def test_crashed_receiver_dropped_at_delivery_time(self):
        env = GridEnvironment()
        echo = Echo(env, "b", "site")
        Agent(env, "a", "site")
        echo.crash()
        env.route(msg(action="echo"))
        env.run()
        assert len(env.dropped) == 1
        assert env.metrics.value("drop_reason", agent="receiver-down") == 1


class TestDropOracle:
    def test_bernoulli_oracle_drops_everything_at_rate_one(self):
        env = GridEnvironment()
        Echo(env, "b", "site")
        Agent(env, "a", "site")
        failures = BernoulliFailures(probability=1.0, rng=0)
        env.router.use_bernoulli(failures)
        env.route(msg(action="echo"))
        env.run()
        assert len(env.dropped) == 1
        assert env.metrics.value("drop_reason", agent="oracle") == 1
        # The draw is logged against the receiver, like invocation failures.
        assert failures.log.count("invocation-failure") == 1
        assert failures.log.events[0][1] == "b"

    def test_oracle_off_by_default_and_component_mapping(self):
        env = GridEnvironment()
        Echo(env, "b", "site")
        Agent(env, "a", "site")
        assert env.router.drop_oracle is None
        failures = BernoulliFailures(per_component={"lossy-link": 1.0}, rng=0)
        env.router.use_bernoulli(failures, component_of=lambda m: "lossy-link")
        env.route(msg(action="echo"))
        env.run()
        assert env.metrics.value("drop_reason", agent="oracle") == 1
