"""Exact 1-D satisfiability over the condition language."""

from repro.analysis.sat import (
    atoms_satisfiable,
    conditions_overlap,
    definitely_unsatisfiable,
    expand_dnf,
    possibly_true,
)
from repro.process.conditions import TRUE, And, Atom, Not, Or, Relation
from repro.process.parser import parse_condition


def atom(rel, value, data="D1", prop="Value"):
    return Atom(data, prop, rel, value)


class TestAtomsSatisfiable:
    def test_empty_interval_is_unsat(self):
        assert not atoms_satisfiable((atom(Relation.GT, 8), atom(Relation.LT, 3)))

    def test_touching_bounds_need_both_inclusive(self):
        assert atoms_satisfiable((atom(Relation.GE, 5), atom(Relation.LE, 5)))
        assert not atoms_satisfiable((atom(Relation.GE, 5), atom(Relation.LT, 5)))

    def test_single_point_excluded_by_ne(self):
        assert not atoms_satisfiable(
            (atom(Relation.GE, 5), atom(Relation.LE, 5), atom(Relation.NE, 5))
        )

    def test_dense_order_survives_finite_disequalities(self):
        assert atoms_satisfiable(
            (atom(Relation.GT, 0), atom(Relation.LT, 1), atom(Relation.NE, 0.5))
        )

    def test_conflicting_equalities(self):
        assert not atoms_satisfiable((atom(Relation.EQ, 3), atom(Relation.EQ, 4)))

    def test_pin_outside_bounds(self):
        assert not atoms_satisfiable((atom(Relation.EQ, 3), atom(Relation.GT, 8)))
        assert atoms_satisfiable((atom(Relation.EQ, 9), atom(Relation.GT, 8)))

    def test_mixed_type_equality_conjunction_is_unsat(self):
        # One scalar cannot be both the string "x" and the number 3.
        assert not atoms_satisfiable((atom(Relation.EQ, "x"), atom(Relation.EQ, 3)))

    def test_ne_against_other_type_is_free(self):
        assert atoms_satisfiable((atom(Relation.EQ, "x"), atom(Relation.NE, 3)))

    def test_ne_only_constraints_always_sat(self):
        assert atoms_satisfiable((atom(Relation.NE, 1), atom(Relation.NE, 2)))

    def test_string_ordering(self):
        assert atoms_satisfiable((atom(Relation.GT, "a"), atom(Relation.LT, "b")))
        assert not atoms_satisfiable((atom(Relation.GT, "b"), atom(Relation.LT, "a")))

    def test_independent_properties_do_not_interact(self):
        assert atoms_satisfiable(
            (
                atom(Relation.GT, 8, prop="Value"),
                atom(Relation.LT, 3, prop="Size"),
            )
        )


class TestExpandDnf:
    def test_true_and_atom(self):
        assert expand_dnf(TRUE) == [()]
        a = atom(Relation.EQ, 1)
        assert expand_dnf(a) == [(a,)]

    def test_not_is_unknown(self):
        assert expand_dnf(Not(atom(Relation.EQ, 1))) is None
        assert expand_dnf(And((atom(Relation.EQ, 1), Not(atom(Relation.EQ, 2))))) is None

    def test_and_over_or_distributes(self):
        a, b, c = (atom(Relation.EQ, v) for v in (1, 2, 3))
        dnf = expand_dnf(And((Or((a, b)), c)))
        assert dnf == [(a, c), (b, c)]

    def test_blowup_capped(self):
        pair = Or((atom(Relation.EQ, 0), atom(Relation.EQ, 1)))
        wide = And(tuple(pair for _ in range(8)))  # 2^8 disjuncts > cap
        assert expand_dnf(wide) is None


class TestVerdicts:
    def test_definitely_unsatisfiable_is_definite(self):
        cond = parse_condition("D1.Value > 8 and D1.Value < 3")
        assert definitely_unsatisfiable(cond)

    def test_satisfiable_condition_not_flagged(self):
        assert not definitely_unsatisfiable(parse_condition("D1.Value > 8"))

    def test_not_never_flagged(self):
        assert not definitely_unsatisfiable(
            Not(parse_condition("D1.Value > 8 and D1.Value < 3"))
        )

    def test_overlap(self):
        a = parse_condition("D1.Value > 0")
        b = parse_condition("D1.Value > 5")
        c = parse_condition("D1.Value < 0")
        assert conditions_overlap(a, b) is True
        assert conditions_overlap(a, c) is False

    def test_overlap_unknown_with_not(self):
        a = parse_condition("D1.Value > 0")
        assert conditions_overlap(a, Not(a)) is None


class TestPossiblyTrue:
    def test_missing_property_is_definitely_false(self):
        assert not possibly_true(atom(Relation.EQ, 1), {})

    def test_value_set_membership(self):
        possible = {("D1", "Value"): {3, 9}}
        assert possibly_true(atom(Relation.GT, 8), possible)
        assert not possibly_true(atom(Relation.GT, 10), possible)

    def test_and_or_combine(self):
        possible = {("D1", "Value"): {3}, ("D2", "Value"): {7}}
        both = And((atom(Relation.EQ, 3), atom(Relation.EQ, 7, data="D2")))
        assert possibly_true(both, possible)
        either = Or((atom(Relation.EQ, 99), atom(Relation.EQ, 7, data="D2")))
        assert possibly_true(either, possible)

    def test_not_cannot_be_refuted(self):
        assert possibly_true(Not(atom(Relation.EQ, 1)), {})
