"""Parser <-> unparse round-trip over the corpus and shipped workflows.

The AST nodes are frozen dataclasses, so ``parse(unparse(ast)) == ast``
is checkable exactly: unparsing loses nothing the parser can see, and a
second round trip is a fixed point.
"""

from pathlib import Path

import pytest

from repro.process.parser import parse_process
from repro.process.structure import ast_to_process, process_to_ast
from repro.process.unparse import unparse, unparse_pretty

CORPUS = Path(__file__).parent / "corpus"
REPO = Path(__file__).resolve().parents[2]

PROCESS_FILES = (
    sorted(CORPUS.glob("*.process"))
    + sorted(REPO.glob("examples/processes/*.process"))
    + sorted(REPO.glob("figures/*.process"))
)


@pytest.mark.parametrize("path", PROCESS_FILES, ids=lambda p: p.stem)
def test_parse_unparse_fixed_point(path):
    ast = parse_process(path.read_text())
    text = unparse(ast)
    again = parse_process(text)
    assert again == ast
    assert unparse(again) == text


@pytest.mark.parametrize("path", PROCESS_FILES, ids=lambda p: p.stem)
def test_pretty_form_parses_back(path):
    ast = parse_process(path.read_text())
    assert parse_process(unparse_pretty(ast)) == ast


@pytest.mark.parametrize(
    "path",
    sorted(REPO.glob("examples/processes/*.process"))
    + sorted(REPO.glob("figures/*.process")),
    ids=lambda p: p.stem,
)
def test_graph_roundtrip_preserves_structure(path):
    # AST -> ATN graph -> AST is also lossless for well-structured files.
    ast = parse_process(path.read_text())
    assert process_to_ast(ast_to_process(ast, name=path.stem)) == ast
