"""Structural validation as Findings: edge cases beyond the degree rules."""

from repro.analysis import Severity
from repro.process import check_process
from repro.process.model import ActivityKind, ProcessDescription
from repro.process.parser import parse_condition, parse_process
from repro.process.structure import ast_to_process
from repro.process.validate import check_process_findings


def codes(findings):
    return sorted((f.code, f.locus) for f in findings)


def test_condition_on_non_choice_transition_is_e103():
    pd = ProcessDescription("stray-guard")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("A", ActivityKind.END_USER)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "A", parse_condition("D1.Value > 0"), id="t-bad")
    pd.connect("A", "End")
    findings = check_process_findings(pd)
    assert codes(findings) == [("E103", "t-bad")]
    assert findings[0].severity is Severity.ERROR


def test_disconnected_component_found_from_both_ends():
    # A1 -> A2 floats free: unreachable from Begin (W101) and, because the
    # reachability checks are independent, also unable to reach End (E105).
    pd = ProcessDescription("island")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("A", ActivityKind.END_USER)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "A")
    pd.connect("A", "End")
    pd.add("X1", ActivityKind.END_USER)
    pd.add("X2", ActivityKind.END_USER)
    pd.connect("X1", "X2")
    pd.connect("X2", "X1")
    findings = check_process_findings(pd)
    assert codes(findings) == [
        ("E105", "X1"),
        ("E105", "X2"),
        ("W101", "X1"),
        ("W101", "X2"),
    ]


def test_nested_fork_in_iterative_is_well_structured():
    # Figure 10's shape: a FORK block inside a do-while loop body.
    ast = parse_process(
        "BEGIN; A; {ITERATIVE {COND D12.Value > 8} "
        "{B; {FORK {C1} {C2} JOIN}; D}}; END"
    )
    pd = ast_to_process(ast, name="nested")
    assert check_process_findings(pd) == []


def test_string_shim_renders_findings():
    pd = ProcessDescription("no-end")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("A", ActivityKind.END_USER)
    pd.connect("Begin", "A")
    strings = check_process(pd)
    assert strings == [
        str(f) for f in check_process_findings(pd)
    ]
    assert any(s.startswith("E101 error") for s in strings)
