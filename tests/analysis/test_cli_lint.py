"""``repro-grid lint``: exit codes, text and JSON output, sidecars."""

import json

from repro.cli import main

CLEAN = "BEGIN; A1; A2; END"
DEAD_GUARD = (
    "BEGIN; {CHOICE {COND D1.Value > 8 and D1.Value < 3} {A} {COND true} {B} "
    "MERGE}; END"
)


def lint(tmp_path, text, *args, name="wf.process"):
    path = tmp_path / name
    path.write_text(text)
    return main(["lint", str(path), *args]), str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    code, path = lint(tmp_path, CLEAN)
    assert code == 0
    assert f"OK: {path}: no findings" in capsys.readouterr().out


def test_error_findings_exit_one(tmp_path, capsys):
    code, _ = lint(tmp_path, DEAD_GUARD)
    assert code == 1
    out = capsys.readouterr().out
    assert "E201" in out and "can never hold" in out


def test_warning_only_exits_zero(tmp_path, capsys):
    sidecar = tmp_path / "wf.json"
    sidecar.write_text(
        json.dumps(
            {
                "initial_data": [],
                "activities": {
                    "A1": {"outputs": ["D8"]},
                    "A2": {"outputs": ["D8"]},
                },
            }
        )
    )
    code, _ = lint(tmp_path, CLEAN, "--bindings", str(sidecar))
    assert code == 0
    assert "W402" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    code, path = lint(tmp_path, DEAD_GUARD, "--format", "json")
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["file"] == path
    assert doc["errors"] == 1 and doc["warnings"] == 0
    (finding,) = doc["findings"]
    assert finding["code"] == "E201"
    assert finding["name"] == "unsatisfiable-choice"
    assert finding["severity"] == "error"


def test_unreadable_file_exits_two(capsys):
    assert main(["lint", "/no/such/file.process"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_unparsable_file_exits_two(tmp_path, capsys):
    code, _ = lint(tmp_path, "BEGIN; {FORK {A} JOIN")  # unbalanced
    assert code == 2
    assert "cannot parse" in capsys.readouterr().err


def test_bad_bindings_exit_two(tmp_path, capsys):
    sidecar = tmp_path / "wf.json"
    sidecar.write_text("{not json")
    code, _ = lint(tmp_path, CLEAN, "--bindings", str(sidecar))
    assert code == 2
    assert "cannot load bindings" in capsys.readouterr().err


def test_bindings_wake_up_semantic_passes(tmp_path, capsys):
    sidecar = tmp_path / "wf.json"
    sidecar.write_text(
        json.dumps(
            {
                "initial_data": ["D1"],
                "activities": {
                    "A1": {"service": "POD", "inputs": ["D1"], "outputs": ["D8"]},
                    "A2": {"inputs": ["D8"]},
                },
                "services": [{"name": "OTHER"}, {"name": "A2"}],
            }
        )
    )
    code, _ = lint(tmp_path, CLEAN, "--bindings", str(sidecar), "--format", "json")
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in doc["findings"]] == ["E501"]
