"""Choice-guard satisfiability findings (E201 / E202)."""

from repro.analysis import condition_findings
from repro.process.conditions import TRUE, Not
from repro.process.model import ActivityKind, ProcessDescription
from repro.process.parser import parse_condition


def choice(*branches):
    """BEGIN -> CHOICE with one (condition, id) branch per argument, all
    merging -> END.  ``condition`` may be None (default arm) or text."""
    pd = ProcessDescription("choice")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("C", ActivityKind.CHOICE)
    pd.add("M", ActivityKind.MERGE)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "C")
    for i, (condition, tid) in enumerate(branches):
        name = f"A{i}"
        pd.add(name, ActivityKind.END_USER)
        if isinstance(condition, str):
            condition = parse_condition(condition)
        pd.connect("C", name, condition, id=tid)
        pd.connect(name, "M")
    pd.connect("M", "End")
    return pd


def codes(findings):
    return sorted((f.code, f.locus) for f in findings)


def test_unsatisfiable_guard_flagged():
    pd = choice(("D1.Value > 8 and D1.Value < 3", "t-dead"), (None, "t-else"))
    assert codes(condition_findings(pd)) == [("E201", "t-dead")]


def test_disjoint_guards_are_clean():
    pd = choice(("D1.Value > 5", "t-hi"), ("D1.Value < 0", "t-lo"))
    assert condition_findings(pd) == []


def test_overlapping_guards_flagged_on_second():
    pd = choice(("D1.Value > 0", "t-a"), ("D1.Value > 5", "t-b"))
    assert codes(condition_findings(pd)) == [("E202", "t-b")]


def test_default_arms_exempt_from_overlap():
    # The planner emits literal-true guards on selective branches; neither
    # None nor TRUE arms participate in the overlap check.
    pd = choice(("D1.Value > 0", "t-a"), (TRUE, "t-true"), (None, "t-none"))
    assert condition_findings(pd) == []


def test_identical_guards_overlap():
    pd = choice(("D1.Value > 0", "t-a"), ("D1.Value > 0", "t-b"))
    assert codes(condition_findings(pd)) == [("E202", "t-b")]


def test_not_guards_stay_silent():
    # Negation is outside the exact fragment: no verdict, no finding.
    pd = choice(
        (Not(parse_condition("D1.Value > 0")), "t-not"),
        ("D1.Value > 0", "t-pos"),
    )
    assert condition_findings(pd) == []


def test_conditions_on_non_choice_ignored_here():
    # E103 is the structural pass's job; this pass only reads Choices.
    pd = ProcessDescription("stray")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("A", ActivityKind.END_USER)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "A", parse_condition("D1.Value > 8 and D1.Value < 3"))
    pd.connect("A", "End")
    assert condition_findings(pd) == []
