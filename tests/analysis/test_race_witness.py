"""The ``race_witness`` checker: static conflicts replayed against journals.

Hand-built :class:`~repro.obs.journal.JournalEvent` sequences pin the
three verdicts — *confirmed* (execution windows overlap on the flagged
key), *refuted* (both ran, windows disjoint), *unobserved* (the journal
cannot decide) — and the evicted-case path proves a conflict is still
checkable after its case's events round-trip through the storage mirror
(``encode_events`` / ``decode_events`` / ``CaseJournal.absorb``).
"""

from types import SimpleNamespace

from repro.analysis import race_witness
from repro.analysis.concurrency import Conflict
from repro.obs.journal import CaseJournal, JournalEvent, decode_events, encode_events

WW = Conflict("write-write", "FORK", "R", "WA", "WB")
RW = Conflict("read-write", "FORK", "Q", "RD", "WR")


def _event(seq, kind, time, **attrs):
    return JournalEvent(seq, "case-0", kind, time, agent="t", attrs=attrs)


def overlapping_events():
    """WA and WB interleave: [1, 5] x [2, 6], both writing R."""
    return [
        _event(0, "dispatch", 1.0, activity="WA", inputs=["D1"]),
        _event(1, "dispatch", 2.0, activity="WB", inputs=["D1"]),
        _event(2, "activity-complete", 5.0, activity="WA", outputs=["R"]),
        _event(3, "activity-complete", 6.0, activity="WB", outputs=["R"]),
    ]


def disjoint_events():
    """WA finishes before WB starts: [1, 2] then [3, 4]."""
    return [
        _event(0, "dispatch", 1.0, activity="WA", inputs=["D1"]),
        _event(1, "activity-complete", 2.0, activity="WA", outputs=["R"]),
        _event(2, "dispatch", 3.0, activity="WB", inputs=["D1"]),
        _event(3, "activity-complete", 4.0, activity="WB", outputs=["R"]),
    ]


class TestVerdicts:
    def test_overlapping_windows_confirm_write_write(self):
        report = race_witness(overlapping_events(), [WW])
        assert [v.status for v in report.verdicts] == ["confirmed"]
        assert report.confirmed == 1 and report.checkable == 1
        assert report.precision == 1.0
        assert "interleave" in report.verdicts[0].detail

    def test_disjoint_windows_refute(self):
        report = race_witness(disjoint_events(), [WW])
        assert [v.status for v in report.verdicts] == ["refuted"]
        assert report.refuted == 1
        assert report.precision == 0.0

    def test_read_write_uses_reader_inputs_and_writer_outputs(self):
        events = [
            _event(0, "dispatch", 1.0, activity="RD", inputs=["Q"]),
            _event(1, "dispatch", 2.0, activity="WR", inputs=["D1"]),
            _event(2, "activity-complete", 5.0, activity="RD", outputs=["X"]),
            _event(3, "activity-complete", 6.0, activity="WR", outputs=["Q"]),
        ]
        report = race_witness(events, [RW])
        assert report.confirmed == 1

    def test_missing_activity_is_unobserved(self):
        events = overlapping_events()[:3]  # WB never completes
        report = race_witness(events, [WW])
        assert [v.status for v in report.verdicts] == ["unobserved"]
        assert report.checkable == 0
        assert report.precision == 1.0  # nothing checkable: vacuous
        assert "'WB'" in report.verdicts[0].detail

    def test_no_runtime_footprint_is_unobserved(self):
        events = [
            _event(0, "dispatch", 1.0, activity="WA", inputs=["D1"]),
            _event(1, "dispatch", 2.0, activity="WB", inputs=["D1"]),
            # Neither completion actually wrote R at runtime.
            _event(2, "activity-complete", 5.0, activity="WA", outputs=["S"]),
            _event(3, "activity-complete", 6.0, activity="WB", outputs=["T"]),
        ]
        report = race_witness(events, [WW])
        assert [v.status for v in report.verdicts] == ["unobserved"]

    def test_redispatch_uses_last_attempt_window(self):
        """A retried activity's window starts at its *last* dispatch."""
        events = [
            _event(0, "dispatch", 0.5, activity="WA", inputs=["D1"]),
            _event(1, "dispatch", 3.0, activity="WA", inputs=["D1"]),
            _event(2, "activity-complete", 4.0, activity="WA", outputs=["R"]),
            _event(3, "dispatch", 1.0, activity="WB", inputs=["D1"]),
            _event(4, "activity-complete", 2.0, activity="WB", outputs=["R"]),
        ]
        report = race_witness(events, [WW])
        assert [v.status for v in report.verdicts] == ["refuted"]

    def test_empty_report_precision_is_vacuous(self):
        report = race_witness([], [])
        assert report.verdicts == ()
        assert report.precision == 1.0


class TestEvictedCaseFallback:
    def test_witness_after_storage_roundtrip(self):
        """An evicted case re-hydrated from its mirror blob stays checkable."""
        engine = SimpleNamespace(now=0.0)
        journal = CaseJournal(engine, enabled=True, max_cases=4)
        for event in overlapping_events():
            engine.now = event.time
            journal.append("case-0", event.kind, agent="t", **event.attrs)
        blob = journal.encode_case("case-0")

        # Evict, then lazy-sync the decoded events back in — the path the
        # monitoring service takes for a non-resident case.
        journal.clear()
        assert not journal.has_case("case-0")
        case_id, events = decode_events(blob)
        journal.absorb(case_id, events)
        assert journal.has_case("case-0")

        report = race_witness(journal.events("case-0"), [WW])
        assert report.confirmed == 1 and report.precision == 1.0

    def test_encode_decode_preserves_witness_fields(self):
        blob = encode_events("case-9", disjoint_events())
        case_id, events = decode_events(blob)
        assert case_id == "case-9"
        report = race_witness(events, [WW])
        assert [v.status for v in report.verdicts] == ["refuted"]
