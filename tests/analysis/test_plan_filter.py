"""Static GP pre-filter: sound doomed verdicts, bit-identical fitness."""

import pytest

from repro.analysis import PlanStaticFilter
from repro.analysis.plan_filter import terminal_names
from repro.plan import concurrent, sequential, terminal
from repro.planner import EvaluationEngine, GPConfig, GPPlanner
from repro.planner.fitness import FitnessWeights, evaluate_tree
from repro.planner.simulate import SimulationOptions
from repro.virolab import planning_problem

SMAX = 40


@pytest.fixture(scope="module")
def problem():
    return planning_problem()


@pytest.fixture(scope="module")
def filt(problem):
    return PlanStaticFilter(
        problem, FitnessWeights(), SMAX, SimulationOptions(), mode="exact"
    )


def test_terminal_names():
    tree = sequential("POD", sequential("P3DR1", "POD"), terminal("POR"))
    assert terminal_names(tree) == {"POD", "P3DR1", "POR"}


def test_unknown_activity_only_is_doomed(filt):
    assert filt.doomed(terminal("NOPE"))


def test_downstream_only_activity_is_doomed(filt):
    # POR needs a 3D model no terminal in the set can produce: the closure
    # never validates it, whatever the controller structure.
    assert filt.doomed(sequential("POR", "POR"))
    assert filt.doomed(sequential("PSF", "POR"))


def test_producer_chain_is_not_doomed(filt):
    # POD is applicable in Sinit; POD -> P3DR -> POR becomes reachable.
    assert not filt.doomed(terminal("POD"))
    assert not filt.doomed(sequential("POD", "P3DR1", "POR"))


def test_one_viable_terminal_saves_the_tree(filt):
    # Soundness: a tree is doomed only if NO terminal can ever fire.
    assert not filt.doomed(sequential("POR", "POD"))


def test_exact_mode_matches_full_evaluation(problem, filt):
    weights, options = FitnessWeights(), SimulationOptions()
    for tree in (
        terminal("NOPE"),
        sequential("POR", "PSF"),
        sequential("PSF", sequential("POR", "POR")),
    ):
        static = filt.fitness_for(tree)
        assert static is not None
        real = evaluate_tree(tree, problem, weights, SMAX, options)
        assert static == real  # bit-identical, not approximately


def test_viable_tree_returns_none(filt):
    assert filt.fitness_for(terminal("POD")) is None


def test_off_mode_never_dooms(problem):
    off = PlanStaticFilter(
        problem, FitnessWeights(), SMAX, SimulationOptions(), mode="off"
    )
    assert not off.doomed(terminal("NOPE"))


def test_penalty_mode_floors_fitness(problem):
    pen = PlanStaticFilter(
        problem, FitnessWeights(), SMAX, SimulationOptions(), mode="penalty"
    )
    fitness = pen.fitness_for(sequential("POR", "POR"))
    assert fitness.validity == 0.0 and fitness.goal == 0.0


def test_bad_mode_rejected(problem):
    with pytest.raises(ValueError):
        PlanStaticFilter(
            problem, FitnessWeights(), SMAX, SimulationOptions(), mode="maybe"
        )


def test_engine_counters_track_filtered_trees(problem):
    engine = EvaluationEngine(problem, static_filter="exact")
    doomed = sequential("POR", "POR")
    viable = terminal("POD")
    engine.evaluate_many([doomed, viable, doomed])
    assert engine.analysis_rejected == 1  # one unique doomed structure
    assert engine.evaluations == engine.cache_misses == 2
    assert engine.cache_hits == 1
    # Serial path: cached on repeat, filtered when new.
    engine(doomed)
    assert engine.cache_hits == 2
    assert engine.analysis_rejected == 1


class TestRaceMode:
    @pytest.fixture(scope="class")
    def race(self, problem):
        return PlanStaticFilter(
            problem, FitnessWeights(), SMAX, SimulationOptions(), mode="race"
        )

    def test_concurrent_write_write_is_racy(self, race):
        # POD and POR both emit D8 from different services: running them
        # on sibling CONCURRENT branches races on the orientation file.
        assert race.racy(concurrent("POD", "POR"))

    def test_replica_branches_are_not_racy(self, race):
        # P3DR1..P3DR4 are copies of one logical step (one service, same
        # data sets) — the paper's Figure-13 fan-out must stay admissible.
        assert not race.racy(concurrent("P3DR1", "P3DR2", "P3DR3"))

    def test_disjoint_outputs_are_not_racy(self, race):
        assert not race.racy(concurrent("POD", "P3DR1"))

    def test_sequential_composition_is_never_racy(self, race):
        assert not race.racy(sequential("POD", "POR"))

    def test_nested_concurrent_is_found(self, race):
        tree = sequential("POD", concurrent("P3DR1", sequential("POR", "PSF")))
        # POR (writes D8) vs ... P3DR1 writes D9 only - not racy
        assert not race.racy(tree)
        racy = sequential("P3DR1", concurrent("POD", sequential("POR", "PSF")))
        assert race.racy(racy)

    def test_racy_tree_gets_floor_fitness_and_counter(self, race):
        before = race.race_rejected
        fitness = race.fitness_for(concurrent("POD", "POR"))
        assert fitness is not None
        assert fitness.validity == 0.0 and fitness.goal == 0.0
        assert race.race_rejected == before + 1

    def test_other_modes_never_flag_races(self, filt):
        assert not filt.racy(concurrent("POD", "POR"))
        assert filt.race_rejected == 0


def test_critical_path_tiebreak_prefers_shorter_critical_path(problem):
    cfg_off = GPConfig(population_size=30, generations=4)
    cfg_on = cfg_off.with_(critical_path_tiebreak="on")
    off = GPPlanner(cfg_off, rng=3).plan(problem)
    on = GPPlanner(cfg_on, rng=3).plan(problem)
    # Same search (tie-break only touches the final argmax): identical
    # fitness and history, and the winner never has a worse speedup bound.
    assert on.best_fitness == off.best_fitness
    assert on.history == off.history
    from repro.analysis import tree_speedup

    assert tree_speedup(on.best_plan) >= tree_speedup(off.best_plan)


def test_gp_run_identical_with_exact_filter(problem):
    results = {}
    for mode in ("off", "exact"):
        cfg = GPConfig(population_size=30, generations=4, static_filter=mode)
        results[mode] = GPPlanner(cfg, rng=3).plan(problem)
    off, exact = results["off"], results["exact"]
    assert exact.best_fitness == off.best_fitness
    assert exact.best_plan.struct_key() == off.best_plan.struct_key()
    assert exact.history == off.history
    assert exact.evaluations == off.evaluations
    assert exact.analysis_rejected > 0
    assert off.analysis_rejected == 0
