"""Randomized soundness guard for the concurrency verifier.

Processes generated race-free **by construction** — every logical
activity writes its own private key and reads only initial data, so no
interleaving of sibling fork branches can matter — must carry no
E601/E611 error finding, and must enact successfully on a journaled
grid.  The generator reuses the GP initializer's ``random_tree`` (the
same distribution the planner searches), converts through
``tree_to_process`` (replicated occurrences renamed ``X_2, X_3, ...``),
and rewrites ITERATIVE controllers to SEQUENTIAL (loop termination is
orthogonal to race soundness; the default ``true`` loop guard would
spin forever).

If the interference or deadlock pass ever over-approximates onto these
processes, the coordination intake gate refuses them and the enactment
half fails — so the test pins both the analyzer and the gate.
"""

import pytest

from repro._util import as_rng
from repro.analysis import analyze_process
from repro.grid import EndUserService
from repro.plan.convert import tree_to_process
from repro.plan.randgen import random_tree
from repro.plan.tree import Controller, ControllerKind, PlanNode, Terminal
from repro.process.model import Activity, ActivityKind
from repro.services import standard_environment
from tests.services.conftest import drive

ACTIVITIES = ["A0", "A1", "A2", "A3"]

LIBRARY = {
    name: Activity(
        name,
        ActivityKind.END_USER,
        name,
        inputs=("d0",),
        outputs=(f"o{index}",),
    )
    for index, name in enumerate(ACTIVITIES)
}


def _deloop(node: PlanNode) -> PlanNode:
    """ITERATIVE -> SEQUENTIAL, recursively (keep fork/choice structure)."""
    if isinstance(node, Terminal):
        return node
    assert isinstance(node, Controller)
    kind = (
        ControllerKind.SEQUENTIAL
        if node.kind is ControllerKind.ITERATIVE
        else node.kind
    )
    return Controller(kind, tuple(_deloop(child) for child in node.children))


def generated_process(seed: int):
    tree = _deloop(
        random_tree(ACTIVITIES, max_size=12, rng=as_rng(seed), max_branch=3)
    )
    return tree_to_process(tree, name=f"gen-{seed}", library=LIBRARY)


RACE_CODES = ("E601", "E611")


@pytest.mark.parametrize("seed", range(12))
def test_race_free_by_construction_has_no_race_findings(seed):
    pd = generated_process(seed)
    findings = analyze_process(pd)
    raced = [f for f in findings if f.code in RACE_CODES]
    assert raced == [], "\n".join(str(f) for f in raced)


@pytest.mark.parametrize("seed", range(6))
def test_generated_processes_enact_cleanly_under_journal(seed):
    """Sound end to end: the intake gate admits them (no E6xx error to
    refuse on) and the enactment completes with the journal recording."""
    pd = generated_process(seed)
    services = [
        EndUserService(name, work=2.0, effects={f"o{index}": {"Status": "ready"}})
        for index, name in enumerate(ACTIVITIES)
    ]
    env, core, _ = standard_environment(services, containers=2, journal=True)
    user = core.coordination
    reply = drive(
        env,
        user,
        lambda: user.call(
            "coordination",
            "execute-task",
            {
                "process": pd,
                "initial_data": {"d0": {"Status": "ready"}},
                "task": f"gen-{seed}",
            },
        ),
    )
    assert reply["status"] == "completed"
    assert env.journal.has_case(f"gen-{seed}")
    findings = analyze_process(pd)
    assert [f for f in findings if f.code in RACE_CODES] == []
