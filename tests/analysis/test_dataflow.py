"""Def/use dataflow: E401 / W402 / E301 on hand-built graphs."""

from repro.analysis import dataflow_findings
from repro.analysis.dataflow import bindings_known, natural_loop_body
from repro.process.model import ActivityKind, ProcessDescription
from repro.process.parser import parse_condition


def chain(*specs):
    """BEGIN -> end-user activities (name, inputs, outputs) -> END."""
    pd = ProcessDescription("chain")
    pd.add("Begin", ActivityKind.BEGIN)
    prev = "Begin"
    for name, inputs, outputs in specs:
        pd.add(name, ActivityKind.END_USER, None, inputs, outputs)
        pd.connect(prev, name)
        prev = name
    pd.add("End", ActivityKind.END)
    pd.connect(prev, "End")
    return pd


def codes(findings):
    return sorted((f.code, f.locus) for f in findings)


def test_silent_without_bindings():
    pd = chain(("A", (), ()), ("B", (), ()))
    assert not bindings_known(pd)
    assert dataflow_findings(pd) == []


def test_never_written_data_presumed_initial():
    pd = chain(("A", ("D1",), ("D8",)))
    assert dataflow_findings(pd) == []  # D1 arrives with the case


def test_explicit_initial_data_makes_presumption_checkable():
    pd = chain(("A", ("D1",), ("D8",)))
    assert codes(dataflow_findings(pd, initial_data=set())) == [("E401", "A")]
    assert dataflow_findings(pd, initial_data={"D1"}) == []


def test_e401_read_before_any_definition():
    pd = chain(("A", (), ("D8",)), ("B", ("D9",), ()))
    assert codes(dataflow_findings(pd, initial_data=set())) == [("E401", "B")]


def test_accumulator_self_write_is_exempt():
    # The read-modify-write idiom: B initializes-or-refines its own output.
    pd = chain(("A", (), ("D8",)), ("B", ("model",), ("model",)))
    assert dataflow_findings(pd, initial_data=set()) == []


def test_choice_guard_read_is_a_use():
    pd = ProcessDescription("guard")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("C", ActivityKind.CHOICE)
    pd.add("A", ActivityKind.END_USER, None, (), ("D8",))
    pd.add("Z", ActivityKind.END_USER)
    pd.add("M", ActivityKind.MERGE)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "C")
    pd.connect("C", "A", parse_condition("D9.Value > 0"))
    pd.connect("C", "Z")
    pd.connect("A", "M")
    pd.connect("Z", "M")
    pd.connect("M", "End")
    findings = dataflow_findings(pd, initial_data=set())
    assert codes(findings) == [("E401", "C")]
    assert "guard of Choice" in findings[0].message


def fork_join(a_outputs, b_outputs, reader_inputs):
    pd = ProcessDescription("fj")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("F", ActivityKind.FORK)
    pd.add("A", ActivityKind.END_USER, None, (), a_outputs)
    pd.add("B", ActivityKind.END_USER, None, (), b_outputs)
    pd.add("J", ActivityKind.JOIN)
    pd.add("R", ActivityKind.END_USER, None, reader_inputs, ())
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "F")
    pd.connect("F", "A")
    pd.connect("F", "B")
    pd.connect("A", "J")
    pd.connect("B", "J")
    pd.connect("J", "R")
    pd.connect("R", "End")
    return pd


def test_join_unions_branch_definitions():
    # Both branches run, so the reader sees the union of their outputs.
    pd = fork_join(("D8",), ("D9",), ("D8", "D9"))
    assert dataflow_findings(pd, initial_data=set()) == []


def choice_merge(then_outputs, else_outputs, reader_inputs, then_inputs=()):
    pd = ProcessDescription("cm")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("S", ActivityKind.END_USER, None, (), ("D0",))
    pd.add("C", ActivityKind.CHOICE)
    pd.add("A", ActivityKind.END_USER, None, then_inputs, then_outputs)
    pd.add("B", ActivityKind.END_USER, None, (), else_outputs)
    pd.add("M", ActivityKind.MERGE)
    pd.add("R", ActivityKind.END_USER, None, reader_inputs, ())
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "S")
    pd.connect("S", "C")
    pd.connect("C", "A", parse_condition("D0.Value > 0"))
    pd.connect("C", "B")
    pd.connect("A", "M")
    pd.connect("B", "M")
    pd.connect("M", "R")
    pd.connect("R", "End")
    return pd


def test_merge_intersects_branch_definitions():
    # Only one arm runs: a read defined on one arm alone is an E401.
    pd = choice_merge(("D8",), ("D9",), ("D8",))
    assert codes(dataflow_findings(pd, initial_data=set())) == [("E401", "R")]
    both = choice_merge(("D8",), ("D8",), ("D8",))
    assert dataflow_findings(both, initial_data=set()) == []


def test_w402_definition_clobbered_before_read():
    pd = chain(("A", (), ("D8",)), ("B", (), ("D8",)))
    assert codes(dataflow_findings(pd, initial_data=set())) == [("W402", "A")]


def test_definition_surviving_to_end_is_a_product():
    pd = chain(("A", (), ("D8",)))
    assert dataflow_findings(pd, initial_data=set()) == []


def test_read_on_one_path_keeps_definition_alive():
    # The Choice's then-arm reads D8; the definition is not dead even
    # though the else-arm clobbers it.
    pd = choice_merge((), ("D0",), (), then_inputs=("D0",))
    assert dataflow_findings(pd, initial_data=set()) == []


def loop_process(body_outputs, condition_text):
    pd = ProcessDescription("loop")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("M", ActivityKind.MERGE)
    pd.add("A", ActivityKind.END_USER, None, (), body_outputs)
    pd.add("C", ActivityKind.CHOICE)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "M")
    pd.connect("M", "A")
    pd.connect("A", "C")
    pd.connect("C", "M", parse_condition(condition_text), id="t-back")
    pd.connect("C", "End")
    return pd


def test_e301_loop_invariant_condition():
    pd = loop_process(("D2",), "D9.Value > 8")
    assert codes(dataflow_findings(pd)) == [("E301", "t-back")]


def test_loop_condition_fed_by_body_is_fine():
    pd = loop_process(("D9",), "D9.Value > 8")
    assert dataflow_findings(pd) == []


def test_natural_loop_body():
    pd = loop_process(("D2",), "D9.Value > 8")
    assert natural_loop_body(pd, "C", "M") == {"M", "A", "C"}
