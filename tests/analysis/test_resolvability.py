"""Ontology resolvability (E501 / W502) against a minimal KB."""

from repro.analysis import resolvability_findings
from repro.ontology.builtin import DATA, SERVICE, builtin_shell
from repro.process.model import ActivityKind, ProcessDescription


def kb_with(services, data=()):
    kb = builtin_shell("test")
    for name, inputs, outputs in services:
        kb.new_instance(
            SERVICE,
            {
                "Name": name,
                "Type": "End-user",
                "Input Data Set": list(inputs),
                "Output Data Set": list(outputs),
            },
            id=f"SVC-{name}",
        )
    for name, classification in data:
        kb.new_instance(
            DATA, {"Name": name, "Classification": classification}, id=f"DATA-{name}"
        )
    return kb


def one_activity(service, inputs=(), outputs=()):
    pd = ProcessDescription("one")
    pd.add("Begin", ActivityKind.BEGIN)
    pd.add("A1", ActivityKind.END_USER, service, inputs, outputs)
    pd.add("End", ActivityKind.END)
    pd.connect("Begin", "A1")
    pd.connect("A1", "End")
    return pd


def codes(findings):
    return sorted((f.code, f.locus) for f in findings)


def test_unknown_service_is_e501():
    pd = one_activity("POD")
    kb = kb_with([("OTHER", (), ())])
    assert codes(resolvability_findings(pd, kb)) == [("E501", "A1")]


def test_resolvable_service_is_clean():
    pd = one_activity("POD")
    kb = kb_with([("POD", (), ())])
    assert resolvability_findings(pd, kb) == []


def test_service_defaults_to_activity_name():
    pd = one_activity(None)
    kb = kb_with([("A1", (), ())])
    assert resolvability_findings(pd, kb) == []


def test_capability_mismatch_by_classification():
    # Data names are case-local: the comparison resolves each name to its
    # Classification, so D1 (2D Image) vs X1 (Parameter) is a mismatch
    # even though the service resolves.
    pd = one_activity("POD", inputs=("D1",), outputs=("D8",))
    kb = kb_with(
        [("POD", ("X1",), ("D8",))],
        data=[("D1", "2D Image"), ("X1", "Parameter"), ("D8", "3D Model")],
    )
    findings = resolvability_findings(pd, kb)
    assert codes(findings) == [("W502", "A1")]
    assert "cannot consume" in findings[0].message


def test_same_class_under_different_names_matches():
    # Figure 10's P3DR2 feeds D3 where the service frame says D2 — same
    # Classification, so no finding.
    pd = one_activity("P3DR", inputs=("D3",))
    kb = kb_with(
        [("P3DR", ("D2",), ())],
        data=[("D2", "P3DR-Parameter"), ("D3", "P3DR-Parameter")],
    )
    assert resolvability_findings(pd, kb) == []


def test_classifications_map_overrides_kb():
    pd = one_activity("POD", inputs=("D1",))
    kb = kb_with([("POD", ("X1",), ())])
    findings = resolvability_findings(
        pd, kb, classifications={"D1": "2D Image", "X1": "2D Image"}
    )
    assert findings == []


def test_unknown_classification_skipped():
    # Neither the KB nor the caller knows D1's class: stay silent rather
    # than guessing (a container may still accept it at runtime).
    pd = one_activity("POD", inputs=("D1",))
    kb = kb_with([("POD", ("X1",), ())])
    assert resolvability_findings(pd, kb) == []


def test_missing_output_capability():
    pd = one_activity("POD", outputs=("D8",))
    kb = kb_with([("POD", (), ())], data=[("D8", "3D Model")])
    findings = resolvability_findings(pd, kb)
    assert codes(findings) == [("W502", "A1")]
    assert "cannot produce" in findings[0].message
