"""Defect corpus: one minimal process per finding code, exact loci.

Each fixture under ``corpus/`` is either a Section-2 ``.process`` file
with a ``.json`` bindings sidecar (semantic codes) or a ``.graph.json``
explicit-graph document (structural codes the language cannot express).
The fixture's ``expect`` list is the *complete* expected finding set —
asserting equality both ways guards against missed detections and false
positives.  A second test proves every shipped example/figure process is
finding-free.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    FINDING_CODES,
    analyze_process,
    analyze_source,
    load_bindings,
    process_from_graph,
)

CORPUS = Path(__file__).parent / "corpus"
REPO = Path(__file__).resolve().parents[2]

GRAPH_FIXTURES = sorted(CORPUS.glob("*.graph.json"))
PROCESS_FIXTURES = sorted(CORPUS.glob("*.process"))


def _findings_for(path: Path):
    if path.suffix == ".process":
        bindings = load_bindings(path.with_suffix(".json"))
        findings = analyze_source(path.read_text(), bindings, name=path.stem)
        expect = bindings.expect
    else:
        doc = json.loads(path.read_text())
        findings = analyze_process(process_from_graph(doc))
        expect = tuple(doc.get("expect") or ())
    return findings, expect


@pytest.mark.parametrize(
    "path", GRAPH_FIXTURES + PROCESS_FIXTURES, ids=lambda p: p.stem
)
def test_fixture_findings_exact(path):
    findings, expect = _findings_for(path)
    got = sorted((f.code, f.locus) for f in findings)
    want = sorted((e["code"], e["locus"]) for e in expect)
    assert got == want, "\n".join(str(f) for f in findings)


def test_corpus_demonstrates_every_code():
    """Every code in the vocabulary has at least one corpus witness."""
    covered = set()
    for path in GRAPH_FIXTURES + PROCESS_FIXTURES:
        _, expect = _findings_for(path)
        covered.update(e["code"] for e in expect)
    assert covered == set(FINDING_CODES)


@pytest.mark.parametrize(
    "path",
    sorted(REPO.glob("examples/processes/*.process"))
    + sorted(REPO.glob("figures/*.process")),
    ids=lambda p: p.stem,
)
def test_shipped_processes_are_clean(path):
    """Zero false positives on every process description we ship."""
    sidecar = path.with_suffix(".bindings.json")
    bindings = load_bindings(sidecar) if sidecar.exists() else None
    findings = analyze_source(path.read_text(), bindings, name=path.stem)
    assert findings == [], "\n".join(str(f) for f in findings)


def test_figure10_case_study_is_clean():
    """The in-code Figure-10 workflow passes the full pass set (with KB)."""
    from repro.virolab import (
        DATA_CLASSIFICATIONS,
        INITIAL_DATA,
        case_study_kb,
        process_description,
    )

    findings = analyze_process(
        process_description(),
        kb=case_study_kb(),
        initial_data=set(INITIAL_DATA),
        classifications=DATA_CLASSIFICATIONS,
    )
    assert findings == [], "\n".join(str(f) for f in findings)
