"""The Figure-12 schema: class census and slot spot-checks."""

import pytest

from repro.ontology import BUILTIN_CLASS_NAMES, builtin_shell


@pytest.fixture(scope="module")
def shell():
    return builtin_shell()


def test_ten_classes(shell):
    assert len(BUILTIN_CLASS_NAMES) == 10
    assert set(shell.class_names) == set(BUILTIN_CLASS_NAMES)


@pytest.mark.parametrize(
    "cls,expected_slots",
    [
        ("Task", {"ID", "Name", "Owner", "Submit Location", "Status",
                  "Data Set", "Result Set", "Case Description",
                  "Process Description", "Need Planning"}),
        ("Transition", {"ID", "Source Activity", "Destination Activity"}),
        ("Hardware", {"Type", "Speed", "Size", "Bandwidth", "Latency",
                      "Manufacturer", "Model", "Comment"}),
        ("Software", {"Name", "Type", "Manufacturer", "Version", "Distribution"}),
    ],
)
def test_figure12_slots_verbatim(shell, cls, expected_slots):
    assert set(shell.slots_of(cls)) == expected_slots


def test_activity_has_figure12_slots(shell):
    slots = set(shell.slots_of("Activity"))
    for expected in (
        "ID", "Name", "Task ID", "Owner", "Service Name", "Type",
        "Execution Location", "Input Data Set", "Output Data Set",
        "Input Data Order", "Output Data Order", "Status", "Constraint",
        "Work Directory", "Direct Predecessor Set", "Direct Successor Set",
        "Retry Count", "Dispatched By",
    ):
        assert expected in slots


def test_data_has_classification_slot(shell):
    assert "Classification" in shell.slots_of("Data")


def test_resource_references_hardware_and_software(shell):
    hardware = shell.slot_of("Resource", "Hardware")
    assert hardware.allowed_classes == frozenset({"Hardware"})
    software = shell.slot_of("Resource", "Software")
    assert software.allowed_classes == frozenset({"Software"})


def test_task_references(shell):
    assert shell.slot_of("Task", "Process Description").allowed_classes == frozenset(
        {"ProcessDescription"}
    )
    assert shell.slot_of("Task", "Case Description").allowed_classes == frozenset(
        {"CaseDescription"}
    )


def test_shell_is_fresh_each_call():
    a = builtin_shell()
    b = builtin_shell()
    a.new_instance("Data", {"Name": "D1"})
    assert len(b) == 0
