"""The metainformation bridge: enactment artifacts <-> frame instances."""

import pytest

from repro.errors import OntologyError
from repro.ontology import builtin_shell
from repro.ontology_bridge import (
    case_from_kb,
    kb_from_process,
    process_from_kb,
    task_request_from_kb,
)
from repro.plan import normalize, process_to_tree
from repro.process import validate_process
from repro.virolab import CONS1, case_study_kb, plan_tree, process_description


@pytest.fixture
def kb():
    return case_study_kb()


CONSTRAINTS = {"Cons1": CONS1}


class TestProcessFromKb:
    def test_reconstructs_figure10(self, kb):
        pd = process_from_kb(kb, "PD-3DSD", CONSTRAINTS)
        validate_process(pd)
        assert len(pd.end_user_activities()) == 7
        assert len(pd.transitions) == 15

    def test_recovered_tree_is_figure11(self, kb):
        pd = process_from_kb(kb, "PD-3DSD", CONSTRAINTS)
        assert normalize(process_to_tree(pd)) == normalize(plan_tree())

    def test_constraint_attached_to_loop_arc(self, kb):
        pd = process_from_kb(kb, "PD-3DSD", CONSTRAINTS)
        assert pd.transition_between("CHOICE", "MERGE").condition is CONS1
        assert pd.transition_between("CHOICE", "END").condition is None

    def test_service_bindings_preserved(self, kb):
        pd = process_from_kb(kb, "PD-3DSD", CONSTRAINTS)
        assert pd.activity("P3DR4").service == "P3DR"
        assert pd.activity("POD").inputs == ("D1", "D7")

    def test_missing_constraint_registry_rejected(self, kb):
        with pytest.raises(OntologyError):
            process_from_kb(kb, "PD-3DSD", {})

    def test_wrong_class_rejected(self, kb):
        with pytest.raises(OntologyError):
            process_from_kb(kb, "T1", CONSTRAINTS)


class TestCaseFromKb:
    def test_initial_data_properties(self, kb):
        case = case_from_kb(kb, "CD-3DSD")
        assert set(case["initial_data"]) == {
            "D1", "D2", "D3", "D4", "D5", "D6", "D7",
        }
        assert case["initial_data"]["D7"]["Classification"] == "2D Image"
        assert case["result_set"] == ["D12"]
        assert case["constraint"] == "Cons1"

    def test_wrong_class_rejected(self, kb):
        with pytest.raises(OntologyError):
            case_from_kb(kb, "T1")


class TestTaskRequest:
    def test_full_request(self, kb):
        request = task_request_from_kb(kb, "T1", CONSTRAINTS)
        assert request["task"] == "3DSD"
        assert "process" in request
        assert request["initial_data"]["D1"]["Classification"] == "POD-Parameter"

    def test_need_planning_omits_process(self, kb):
        task = kb.get_instance("T1")
        task.set("Need Planning", True)
        request = task_request_from_kb(kb, "T1", CONSTRAINTS)
        assert "process" not in request

    def test_no_process_no_flag_rejected(self, kb):
        task = kb.get_instance("T1")
        task.set("Process Description", None)
        task.values.pop("Process Description")
        with pytest.raises(OntologyError):
            task_request_from_kb(kb, "T1", CONSTRAINTS)


class TestKbFromProcess:
    def test_archive_round_trip(self, kb):
        pd = process_description("archived")
        inst = kb_from_process(kb, pd, creator="unit-test")
        assert inst.get("Creator") == "unit-test"
        restored = process_from_kb(kb, inst.id, CONSTRAINTS)
        validate_process(restored)
        assert normalize(process_to_tree(restored)) == normalize(plan_tree())

    def test_archive_into_fresh_shell(self):
        shell = builtin_shell()
        pd = process_description()
        inst = kb_from_process(shell, pd)
        assert len(shell.instances_of("Activity")) == 13
        assert len(shell.instances_of("Transition")) == 15

    def test_predecessor_successor_sets_recorded(self, kb):
        shell = builtin_shell()
        kb_from_process(shell, process_description())
        psf = shell.find_one("Activity", Name="PSF")
        assert psf.get("Direct Predecessor Set") == ["JOIN"]
        assert psf.get("Direct Successor Set") == ["CHOICE"]

    def test_multiple_archives_no_collision(self, kb):
        shell = builtin_shell()
        kb_from_process(shell, process_description("plan-a"), id_prefix="a")
        kb_from_process(shell, process_description("plan-b"), id_prefix="b")
        assert len(shell.instances_of("ProcessDescription")) == 2


class TestEnactmentFromInstances:
    def test_kb_driven_enactment(self):
        """The Figure-13 caption claim: the instances drive the execution."""
        from repro.planner import GPConfig
        from repro.services import standard_environment
        from tests.services.conftest import drive, synthetic_services

        env, services, fleet = standard_environment(
            synthetic_services(),
            containers=2,
            planner_config=GPConfig(population_size=20, generations=3),
        )
        kb = case_study_kb()
        request = task_request_from_kb(kb, "T1", CONSTRAINTS)
        result = drive(
            env,
            services.coordination,
            lambda: services.coordination.call(
                "coordination", "execute-task", request
            ),
        )
        assert result["status"] == "completed"
        assert result["data"]["D12"]["Classification"] == "Resolution File"
