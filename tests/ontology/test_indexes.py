"""KB hash indexes: equality candidates, invalidation, scan-equivalence.

The indexes are pure accelerators: every test here checks them against
the semantics of a full scan, across instance add / retract / slot
mutation — the invalidation paths the matchmaking hot loop depends on.
"""

import pytest

from repro.ontology import (
    HARDWARE,
    RESOURCE,
    Op,
    Query,
    builtin_shell,
    equivalence_classes,
)


def _scan(kb, query):
    """Reference result: the pre-index linear scan."""
    return [
        inst
        for inst in kb.instances_of(query.cls)
        if all(c.matches(kb, inst) for c in query.constraints)
    ]


@pytest.fixture
def kb():
    out = builtin_shell()
    for name, speed, domain in (
        ("fast1", 4.0, "ucf"),
        ("fast2", 4.0, "ucf"),
        ("slow1", 1.0, "purdue"),
    ):
        hw = out.new_instance(HARDWARE, {"Type": "CPU", "Speed": speed}, id=f"hw-{name}")
        out.new_instance(
            RESOURCE,
            {"Name": name, "Hardware": hw.id, "Administration Domain": domain},
            id=f"res-{name}",
        )
    return out


DOMAIN_QUERY = Query(RESOURCE).where("Administration Domain", Op.EQ, "ucf")


class TestEqualityCandidates:
    def test_candidates_match_scan(self, kb):
        ids = kb.equality_candidates(RESOURCE, "Administration Domain", "ucf")
        assert ids == {"res-fast1", "res-fast2"}

    def test_class_restriction(self, kb):
        ids = kb.equality_candidates(HARDWARE, "Administration Domain", "ucf")
        assert ids == set()

    def test_none_value_falls_back(self, kb):
        assert kb.equality_candidates(RESOURCE, "Name", None) is None

    def test_unhashable_value_falls_back(self, kb):
        assert kb.equality_candidates(RESOURCE, "Name", ["a"]) is None

    def test_unhashable_slot_demoted(self):
        from repro.ontology import KnowledgeBase, Slot, SlotType

        out = KnowledgeBase()
        out.define_class("Thing", [Slot("Tags", SlotType.ANY)])
        out.new_instance("Thing", {"Tags": ["gpu"]}, id="t1")
        assert out.equality_candidates("Thing", "Tags", "gpu") is None
        # Demotion is remembered: later lookups still fall back.
        assert out.equality_candidates("Thing", "Tags", "x") is None

    def test_index_usage_counted(self, kb):
        before = kb.index_hits
        kb.equality_candidates(RESOURCE, "Name", "fast1")
        assert kb.index_hits == before + 1


class TestInvalidation:
    def test_add_instance_updates_index(self, kb):
        assert len(DOMAIN_QUERY.run(kb)) == 2  # builds the index
        kb.new_instance(
            RESOURCE, {"Name": "new", "Administration Domain": "ucf"}, id="res-new"
        )
        result = DOMAIN_QUERY.run(kb)
        assert result == _scan(kb, DOMAIN_QUERY)
        assert len(result) == 3

    def test_retract_instance_updates_index(self, kb):
        assert len(DOMAIN_QUERY.run(kb)) == 2
        kb.remove_instance("res-fast1")
        result = DOMAIN_QUERY.run(kb)
        assert result == _scan(kb, DOMAIN_QUERY)
        assert [i.id for i in result] == ["res-fast2"]

    def test_instance_set_updates_index(self, kb):
        assert len(DOMAIN_QUERY.run(kb)) == 2
        kb.get_instance("res-slow1").set("Administration Domain", "ucf")
        result = DOMAIN_QUERY.run(kb)
        assert result == _scan(kb, DOMAIN_QUERY)
        assert len(result) == 3

    def test_version_bumps_on_changes(self, kb):
        v0 = kb.version
        inst = kb.new_instance(RESOURCE, {"Name": "v"}, id="res-v")
        assert kb.version > v0
        v1 = kb.version
        inst.set("Name", "v2")
        assert kb.version > v1
        v2 = kb.version
        kb.remove_instance("res-v")
        assert kb.version > v2

    def test_invalidate_indexes_after_raw_mutation(self, kb):
        assert len(DOMAIN_QUERY.run(kb)) == 2
        # Raw dict mutation bypasses Instance.set — the documented escape
        # hatch is an explicit invalidation.
        kb.get_instance("res-slow1").values["Administration Domain"] = "ucf"
        kb.invalidate_indexes()
        assert len(DOMAIN_QUERY.run(kb)) == 3

    def test_removed_instance_stops_notifying(self, kb):
        inst = kb.remove_instance("res-fast1")
        version = kb.version
        inst.set("Name", "detached")
        assert kb.version == version


class TestScanEquivalence:
    def test_find_uses_index_same_results(self, kb):
        expected = [i for i in kb.instances_of(RESOURCE) if i.get("Name") == "fast2"]
        assert kb.find(RESOURCE, Name="fast2") == expected

    def test_find_multi_equality(self, kb):
        result = kb.find(
            RESOURCE, **{"Administration Domain": "ucf", "Name": "fast1"}
        )
        assert [i.id for i in result] == ["res-fast1"]

    def test_find_no_match_via_index(self, kb):
        assert kb.find(RESOURCE, Name="nope") == []

    def test_query_reference_path_unaffected(self, kb):
        q = Query(RESOURCE).where("Hardware/Speed", Op.GE, 2.0)
        assert q.run(kb) == _scan(kb, q)

    def test_query_mixed_eq_and_range(self, kb):
        q = (
            Query(RESOURCE)
            .where("Administration Domain", "=", "ucf")
            .where("Hardware/Speed", ">=", 2.0)
        )
        assert q.run(kb) == _scan(kb, q)
        assert len(q.run(kb)) == 2


class TestEquivalenceClassesConsistency:
    def test_groups_follow_add_and_retract(self, kb):
        groups = equivalence_classes(
            kb, kb.instances_of(RESOURCE), ["Administration Domain"]
        )
        assert {k[0] for k in groups} == {"ucf", "purdue"}
        kb.new_instance(
            RESOURCE, {"Name": "n", "Administration Domain": "mit"}, id="res-n"
        )
        kb.remove_instance("res-slow1")
        groups = equivalence_classes(
            kb, kb.instances_of(RESOURCE), ["Administration Domain"]
        )
        assert {k[0] for k in groups} == {"ucf", "mit"}

    def test_reference_path_groups(self, kb):
        groups = equivalence_classes(
            kb, kb.instances_of(RESOURCE), ["Hardware/Speed", "Administration Domain"]
        )
        assert len(groups) == 2
        kb.get_instance("hw-fast2").set("Speed", 9.0)
        groups = equivalence_classes(
            kb, kb.instances_of(RESOURCE), ["Hardware/Speed", "Administration Domain"]
        )
        assert len(groups) == 3
