"""Serialization round-trips for knowledge bases, including hypothesis
property tests over randomly generated schemas/instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.ontology import (
    Cardinality,
    KnowledgeBase,
    Slot,
    SlotType,
    builtin_shell,
    kb_from_dict,
    kb_from_json,
    kb_to_dict,
    kb_to_json,
)


def test_builtin_shell_roundtrip():
    kb = builtin_shell()
    restored = kb_from_json(kb_to_json(kb))
    assert set(restored.class_names) == set(kb.class_names)
    for cls in kb.class_names:
        assert set(restored.slots_of(cls)) == set(kb.slots_of(cls))


def test_instances_roundtrip():
    kb = builtin_shell()
    kb.new_instance("Data", {"Name": "D1", "Classification": "POD-Parameter"})
    kb.new_instance(
        "Hardware", {"Type": "CPU", "Speed": 2.4, "Latency": 10.0}, id="hw1"
    )
    kb.new_instance(
        "Resource",
        {"Name": "cluster", "Hardware": "hw1", "Number of Nodes": 16},
    )
    restored = kb_from_dict(kb_to_dict(kb))
    assert len(restored) == len(kb)
    res = restored.find_one("Resource", Name="cluster")
    assert restored.resolve(res, "Hardware").get("Speed") == 2.4


def test_unknown_format_version_rejected():
    with pytest.raises(SchemaError):
        kb_from_dict({"format": 99})


def test_serialization_is_deterministic():
    kb = builtin_shell()
    kb.new_instance("Data", {"Name": "D1"})
    assert kb_to_json(kb) == kb_to_json(kb)


_slot_names = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta", "Epsilon"])
_scalar_types = st.sampled_from(
    [SlotType.STRING, SlotType.INTEGER, SlotType.FLOAT, SlotType.BOOLEAN]
)


@st.composite
def _random_kb(draw):
    kb = KnowledgeBase("random")
    n_slots = draw(st.integers(1, 4))
    names = draw(
        st.lists(_slot_names, min_size=n_slots, max_size=n_slots, unique=True)
    )
    slots = []
    slot_types = {}
    for name in names:
        stype = draw(_scalar_types)
        card = draw(st.sampled_from(list(Cardinality)))
        slots.append(Slot(name, stype, cardinality=card))
        slot_types[name] = (stype, card)
    kb.define_class("Thing", slots)

    value_strategies = {
        SlotType.STRING: st.text(
            alphabet=st.characters(codec="ascii", exclude_characters='"\\\n'),
            max_size=10,
        ),
        SlotType.INTEGER: st.integers(-1000, 1000),
        SlotType.FLOAT: st.floats(-1e6, 1e6, allow_nan=False),
        SlotType.BOOLEAN: st.booleans(),
    }
    for i in range(draw(st.integers(0, 5))):
        values = {}
        for name, (stype, card) in slot_types.items():
            if not draw(st.booleans()):
                continue
            base = value_strategies[stype]
            if card is Cardinality.MULTIPLE:
                values[name] = draw(st.lists(base, max_size=3))
            else:
                values[name] = draw(base)
        kb.new_instance("Thing", values, id=f"t{i}")
    return kb


@given(_random_kb())
@settings(max_examples=50, deadline=None)
def test_random_kb_roundtrip(kb):
    restored = kb_from_json(kb_to_json(kb))
    assert kb_to_dict(restored) == kb_to_dict(kb)
