"""Unit tests for the frame system (classes, slots, instances, KB)."""

import pytest

from repro.errors import (
    SchemaError,
    UnknownClassError,
    UnknownInstanceError,
    UnknownSlotError,
    ValidationError,
)
from repro.ontology import (
    Cardinality,
    Instance,
    KnowledgeBase,
    OntologyClass,
    Slot,
    SlotType,
)


@pytest.fixture
def kb():
    out = KnowledgeBase("test")
    out.define_class(
        "Animal",
        [
            Slot("Name", SlotType.STRING, required=True),
            Slot("Legs", SlotType.INTEGER, default=4),
            Slot("Weight", SlotType.FLOAT),
        ],
    )
    out.define_class(
        "Dog",
        [Slot("Breed", SlotType.STRING)],
        parent="Animal",
    )
    out.define_class(
        "Kennel",
        [
            Slot(
                "Residents",
                SlotType.INSTANCE,
                cardinality=Cardinality.MULTIPLE,
                allowed_classes=frozenset({"Dog"}),
            )
        ],
    )
    return out


class TestSlot:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Slot("")

    def test_allowed_classes_require_instance_type(self):
        with pytest.raises(SchemaError):
            Slot("x", SlotType.STRING, allowed_classes=frozenset({"Dog"}))

    def test_scalar_type_check(self):
        slot = Slot("Legs", SlotType.INTEGER)
        slot.check_value(4)
        with pytest.raises(ValidationError):
            slot.check_value("four")

    def test_bool_not_accepted_as_integer(self):
        slot = Slot("Legs", SlotType.INTEGER)
        with pytest.raises(ValidationError):
            slot.check_value(True)

    def test_float_slot_accepts_int(self):
        Slot("Weight", SlotType.FLOAT).check_value(3)

    def test_multi_value_requires_sequence(self):
        slot = Slot("Tags", SlotType.STRING, cardinality=Cardinality.MULTIPLE)
        slot.check_value(["a", "b"])
        with pytest.raises(ValidationError):
            slot.check_value("a")

    def test_multi_value_checks_each_item(self):
        slot = Slot("Tags", SlotType.STRING, cardinality=Cardinality.MULTIPLE)
        with pytest.raises(ValidationError):
            slot.check_value(["ok", 3])

    def test_none_value_allowed(self):
        Slot("Weight", SlotType.FLOAT).check_value(None)

    def test_any_type_accepts_everything(self):
        Slot("Value", SlotType.ANY).check_value({"arbitrary": object()})


class TestClasses:
    def test_duplicate_slot_rejected(self):
        with pytest.raises(SchemaError):
            OntologyClass("C", [Slot("a"), Slot("a")])

    def test_duplicate_class_rejected(self, kb):
        with pytest.raises(SchemaError):
            kb.define_class("Animal")

    def test_unknown_parent_rejected(self):
        kb = KnowledgeBase()
        with pytest.raises(UnknownClassError):
            kb.define_class("Child", parent="Ghost")

    def test_inherited_slots_merged(self, kb):
        slots = kb.slots_of("Dog")
        assert {"Name", "Legs", "Weight", "Breed"} == set(slots)

    def test_ancestors_order(self, kb):
        assert kb.ancestors("Dog") == ["Dog", "Animal"]

    def test_is_subclass(self, kb):
        assert kb.is_subclass("Dog", "Animal")
        assert not kb.is_subclass("Animal", "Dog")

    def test_slot_of_unknown_raises(self, kb):
        with pytest.raises(UnknownSlotError):
            kb.slot_of("Dog", "Wings")


class TestInstances:
    def test_create_and_get(self, kb):
        rex = kb.new_instance("Dog", {"Name": "Rex", "Breed": "lab"})
        assert kb.get_instance(rex.id) is rex
        assert rex.get("Name") == "Rex"

    def test_defaults_applied(self, kb):
        rex = kb.new_instance("Dog", {"Name": "Rex"})
        assert rex.get("Legs") == 4

    def test_missing_required_slot(self, kb):
        with pytest.raises(ValidationError):
            kb.new_instance("Dog", {"Breed": "lab"})

    def test_unknown_slot_rejected(self, kb):
        with pytest.raises(UnknownSlotError):
            kb.new_instance("Dog", {"Name": "Rex", "Wings": 2})

    def test_duplicate_id_rejected(self, kb):
        kb.new_instance("Dog", {"Name": "Rex"}, id="d1")
        with pytest.raises(ValidationError):
            kb.new_instance("Dog", {"Name": "Fido"}, id="d1")

    def test_generated_ids_deterministic(self, kb):
        a = kb.new_instance("Dog", {"Name": "A"})
        b = kb.new_instance("Dog", {"Name": "B"})
        assert a.id == "Dog-1" and b.id == "Dog-2"

    def test_instances_of_includes_subclasses(self, kb):
        kb.new_instance("Dog", {"Name": "Rex"})
        assert len(kb.instances_of("Animal")) == 1
        assert len(kb.instances_of("Animal", direct_only=True)) == 0

    def test_remove_instance(self, kb):
        rex = kb.new_instance("Dog", {"Name": "Rex"})
        kb.remove_instance(rex.id)
        assert not kb.has_instance(rex.id)
        assert kb.instances_of("Animal") == []

    def test_unknown_instance_raises(self, kb):
        with pytest.raises(UnknownInstanceError):
            kb.get_instance("nope")

    def test_reference_validation(self, kb):
        rex = kb.new_instance("Dog", {"Name": "Rex"})
        kennel = kb.new_instance("Kennel", {"Residents": [rex.id]})
        kb.validate_all()
        # A non-Dog resident must be rejected on full validation.
        cat = kb.new_instance("Animal", {"Name": "Tom"})
        kennel.set("Residents", [rex.id, cat.id])
        with pytest.raises(ValidationError):
            kb.validate_all()

    def test_resolve_multi_reference(self, kb):
        rex = kb.new_instance("Dog", {"Name": "Rex"})
        kennel = kb.new_instance("Kennel", {"Residents": [rex.id]})
        assert kb.resolve(kennel, "Residents") == [rex]

    def test_resolve_missing_optional(self, kb):
        rex = kb.new_instance("Dog", {"Name": "Rex"})
        assert kb.resolve(rex, "Weight") is None

    def test_abstract_class_not_instantiable(self):
        kb = KnowledgeBase()
        kb.define_class("Base", abstract=True)
        with pytest.raises(ValidationError):
            kb.new_instance("Base")


class TestShellAndMerge:
    def test_shell_has_no_instances(self, kb):
        kb.new_instance("Dog", {"Name": "Rex"})
        shell = kb.shell()
        assert len(shell) == 0
        assert set(shell.class_names) == set(kb.class_names)

    def test_shell_preserves_inheritance(self, kb):
        shell = kb.shell()
        assert shell.get_class("Dog").parent == "Animal"

    def test_merge_adds_instances(self, kb):
        other = kb.shell("user")
        other.new_instance("Dog", {"Name": "Rex"}, id="u-rex")
        kb.merge(other)
        assert kb.has_instance("u-rex")

    def test_merge_conflicting_schema_rejected(self, kb):
        other = KnowledgeBase("user")
        other.define_class("Animal", [Slot("Other")])
        with pytest.raises(SchemaError):
            kb.merge(other)

    def test_merge_id_collision_rejected(self, kb):
        kb.new_instance("Dog", {"Name": "Rex"}, id="d1")
        other = kb.shell("user")
        other.new_instance("Dog", {"Name": "Imp"}, id="d1")
        with pytest.raises(ValidationError):
            kb.merge(other)


class TestFind:
    def test_find_by_slot(self, kb):
        kb.new_instance("Dog", {"Name": "Rex", "Breed": "lab"})
        kb.new_instance("Dog", {"Name": "Fido", "Breed": "pug"})
        assert len(kb.find("Dog", Breed="lab")) == 1

    def test_find_with_predicate(self, kb):
        kb.new_instance("Dog", {"Name": "Rex", "Legs": 3})
        found = kb.find("Dog", where=lambda i: i.get("Legs") < 4)
        assert [i.get("Name") for i in found] == ["Rex"]

    def test_find_one_requires_uniqueness(self, kb):
        kb.new_instance("Dog", {"Name": "Rex"})
        kb.new_instance("Dog", {"Name": "Fido"})
        with pytest.raises(UnknownInstanceError):
            kb.find_one("Dog", Legs=4)
