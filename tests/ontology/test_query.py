"""Tests for declarative queries and equivalence classes."""

import pytest

from repro.ontology import (
    HARDWARE,
    RESOURCE,
    Op,
    Query,
    SlotConstraint,
    builtin_shell,
    equivalence_classes,
)


@pytest.fixture
def kb():
    out = builtin_shell()
    for name, speed, domain in (
        ("fast1", 4.0, "ucf"),
        ("fast2", 4.0, "ucf"),
        ("slow1", 1.0, "purdue"),
        ("slow2", 1.0, "ucf"),
    ):
        hw = out.new_instance(HARDWARE, {"Type": "CPU", "Speed": speed}, id=f"hw-{name}")
        out.new_instance(
            RESOURCE,
            {
                "Name": name,
                "Hardware": hw.id,
                "Administration Domain": domain,
                "Number of Nodes": 8,
            },
            id=f"res-{name}",
        )
    return out


class TestOps:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (Op.EQ, 1, 1, True),
            (Op.NE, 1, 2, True),
            (Op.LT, 1, 2, True),
            (Op.LE, 2, 2, True),
            (Op.GT, 3, 2, True),
            (Op.GE, 1, 2, False),
            (Op.CONTAINS, ["a", "b"], "a", True),
            (Op.CONTAINS, "abc", "b", True),
            (Op.IN, "a", ["a", "b"], True),
        ],
    )
    def test_apply(self, op, left, right, expected):
        assert op.apply(left, right) is expected

    def test_type_mismatch_is_false(self):
        assert Op.LT.apply("a", 3) is False


class TestQuery:
    def test_direct_slot(self, kb):
        q = Query(RESOURCE).where("Administration Domain", Op.EQ, "ucf")
        assert len(q.run(kb)) == 3

    def test_reference_path(self, kb):
        q = Query(RESOURCE).where("Hardware/Speed", ">=", 2.0)
        names = sorted(i.get("Name") for i in q.run(kb))
        assert names == ["fast1", "fast2"]

    def test_conjunction(self, kb):
        q = (
            Query(RESOURCE)
            .where("Hardware/Speed", ">=", 2.0)
            .where("Administration Domain", "=", "ucf")
        )
        assert len(q.run(kb)) == 2

    def test_missing_slot_fails_constraint(self, kb):
        q = Query(RESOURCE).where("Location", "=", "nowhere")
        assert q.run(kb) == []

    def test_bad_path_fails_not_raises(self, kb):
        q = Query(RESOURCE).where("Hardware/NoSuch", "=", 1)
        assert q.run(kb) == []

    def test_constraint_on_nonref_path_segment(self, kb):
        constraint = SlotConstraint("Name/Deeper", Op.EQ, "x")
        inst = kb.instances_of(RESOURCE)[0]
        assert constraint.matches(kb, inst) is False


class TestEquivalenceClasses:
    def test_group_by_speed(self, kb):
        groups = equivalence_classes(
            kb, kb.instances_of(RESOURCE), ["Hardware/Speed"]
        )
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [2, 2]

    def test_group_by_speed_and_domain(self, kb):
        groups = equivalence_classes(
            kb,
            kb.instances_of(RESOURCE),
            ["Hardware/Speed", "Administration Domain"],
        )
        assert len(groups) == 3

    def test_unresolvable_key_becomes_none(self, kb):
        groups = equivalence_classes(kb, kb.instances_of(RESOURCE), ["Location"])
        assert list(groups) == [(None,)]
