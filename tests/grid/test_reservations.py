"""Advance reservations: the ledger and the scheduling-service RPC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.grid.reservations import ReservationLedger


class TestLedger:
    def test_book_and_get(self):
        ledger = ReservationLedger(capacity=2)
        r = ledger.book("alice", start=10.0, duration=5.0)
        assert ledger.get(r.token) is r
        assert r.end == 15.0
        assert len(ledger) == 1

    def test_capacity_enforced(self):
        ledger = ReservationLedger(capacity=1)
        ledger.book("a", 0.0, 10.0)
        with pytest.raises(SchedulingError):
            ledger.book("b", 5.0, 10.0)
        # Non-overlapping window is fine.
        ledger.book("b", 10.0, 10.0)

    def test_adjacent_windows_do_not_conflict(self):
        ledger = ReservationLedger(capacity=1)
        ledger.book("a", 0.0, 10.0)
        ledger.book("b", 10.0, 5.0)  # starts exactly at a's end

    def test_peak_overlap_detection(self):
        # Two capacity, three bookings staggered so a peak of 2 exists in
        # the middle: a third overlapping booking must be rejected.
        ledger = ReservationLedger(capacity=2)
        ledger.book("a", 0.0, 10.0)
        ledger.book("b", 5.0, 10.0)
        with pytest.raises(SchedulingError):
            ledger.book("c", 6.0, 2.0)
        ledger.book("c", 10.0, 2.0)

    def test_cancel_frees_capacity(self):
        ledger = ReservationLedger(capacity=1)
        r = ledger.book("a", 0.0, 10.0)
        assert ledger.cancel(r.token)
        assert not ledger.cancel(r.token)
        ledger.book("b", 0.0, 10.0)

    def test_quote_uses_premium(self):
        ledger = ReservationLedger(capacity=1, cost_rate=2.0)
        assert ledger.quote(10.0) == pytest.approx(1.5 * 2.0 * 10.0)

    def test_holder_bookings_sorted(self):
        ledger = ReservationLedger(capacity=3)
        ledger.book("a", 20.0, 1.0)
        ledger.book("a", 5.0, 1.0)
        ledger.book("b", 0.0, 1.0)
        assert [r.start for r in ledger.holder_bookings("a")] == [5.0, 20.0]

    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            ReservationLedger(capacity=0)
        ledger = ReservationLedger(capacity=1)
        with pytest.raises(SchedulingError):
            ledger.quote(0.0)
        with pytest.raises(SchedulingError):
            ledger.available(5.0, 5.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0.1, 20)),
            min_size=1,
            max_size=30,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_overlap_never_exceeds_capacity(self, requests, capacity):
        ledger = ReservationLedger(capacity=capacity)
        booked = []
        for start, duration in requests:
            try:
                booked.append(ledger.book("h", start, duration))
            except SchedulingError:
                pass
        # Invariant: at every booking edge, active count <= capacity.
        for probe in booked:
            active = sum(1 for r in booked if r.active_at(probe.start))
            assert active <= capacity


class TestSchedulingServiceReservations:
    @pytest.fixture
    def grid(self):
        from repro.planner import GPConfig
        from repro.services import standard_environment
        from tests.services.conftest import synthetic_services

        return standard_environment(
            synthetic_services(),
            containers=2,
            reservable=True,
            planner_config=GPConfig(population_size=20, generations=3),
        )

    def test_quote_and_book(self, grid):
        from tests.services.conftest import drive

        env, services, fleet = grid
        user = services.coordination
        quote = drive(
            env, user,
            lambda: user.call("scheduling", "quote-reservation",
                              {"container": "ac1", "duration": 100.0}),
        )
        assert quote["supported"] and quote["cost"] > 0
        booking = drive(
            env, user,
            lambda: user.call("scheduling", "reserve",
                              {"container": "ac1", "start": 50.0,
                               "duration": 100.0}),
        )
        assert booking["cost"] == pytest.approx(quote["cost"])
        assert env.node("node1").reservations.get(booking["token"]) is not None

    def test_unsupported_node(self):
        from repro.errors import ServiceError
        from repro.planner import GPConfig
        from repro.services import standard_environment
        from tests.services.conftest import drive, synthetic_services

        env, services, fleet = standard_environment(
            synthetic_services(), containers=1, reservable=False,
            planner_config=GPConfig(population_size=20, generations=3),
        )
        user = services.coordination
        quote = drive(
            env, user,
            lambda: user.call("scheduling", "quote-reservation",
                              {"container": "ac1", "duration": 10.0}),
        )
        assert quote == {"supported": False}
        with pytest.raises(ServiceError):
            drive(
                env, user,
                lambda: user.call("scheduling", "reserve",
                                  {"container": "ac1", "start": 0.0,
                                   "duration": 10.0}),
            )

    def test_overbooking_rejected_and_cancel_recovers(self, grid):
        from repro.errors import ServiceError
        from tests.services.conftest import drive

        env, services, fleet = grid
        user = services.coordination
        tokens = []
        for _ in range(4):  # node1 has 4 slots
            booking = drive(
                env, user,
                lambda: user.call("scheduling", "reserve",
                                  {"container": "ac1", "start": 0.0,
                                   "duration": 50.0}),
            )
            tokens.append(booking["token"])
        with pytest.raises(ServiceError):
            drive(
                env, user,
                lambda: user.call("scheduling", "reserve",
                                  {"container": "ac1", "start": 10.0,
                                   "duration": 10.0}),
            )
        cancelled = drive(
            env, user,
            lambda: user.call("scheduling", "cancel-reservation",
                              {"container": "ac1", "token": tokens[0]}),
        )
        assert cancelled["cancelled"]
        drive(
            env, user,
            lambda: user.call("scheduling", "reserve",
                              {"container": "ac1", "start": 10.0,
                               "duration": 10.0}),
        )
