"""GridEnvironment: routing, nodes, delays."""

import pytest

from repro.errors import GridError
from repro.grid import Agent, GridEnvironment, HardwareProfile, LinkProfile


class Pong(Agent):
    def handle_ping(self, message):
        return {"pong": True}


def test_node_management():
    env = GridEnvironment()
    node = env.add_node("n1", "siteA", HardwareProfile(speed=3.0), slots=2)
    assert env.node("n1") is node
    assert node.duration(6.0) == 2.0
    assert env.node_names == ("n1",)
    with pytest.raises(GridError):
        env.add_node("n1", "siteB")
    with pytest.raises(GridError):
        env.node("ghost")


def test_node_register_in_kb():
    from repro.ontology import builtin_shell

    env = GridEnvironment()
    node = env.add_node("n1", "siteA", HardwareProfile(speed=3.0), slots=2)
    kb = builtin_shell()
    res = node.register_in(kb)
    assert res.get("Name") == "n1"
    assert kb.resolve(res, "Hardware").get("Speed") == 3.0


def test_routing_applies_network_delay():
    env = GridEnvironment()
    env.connect_sites("s1", "s2", latency=1.0, bandwidth=1e9)
    Pong(env, "pong", "s2")
    user = Agent(env, "user", "s1")
    times = {}

    def main():
        times["sent"] = env.engine.now
        yield from user.call("pong", "ping")
        times["done"] = env.engine.now

    env.engine.spawn(main(), "m")
    env.run()
    # two crossings of a 1s-latency link
    assert times["done"] >= 2.0


def test_unknown_receiver_dropped():
    env = GridEnvironment()
    user = Agent(env, "user", "s1")
    user.request("ghost", "anything")
    env.run()
    assert len(env.dropped) == 1


def test_agent_registry():
    env = GridEnvironment()
    a = Agent(env, "a", "s1")
    assert env.agent("a") is a
    assert env.has_agent("a") and not env.has_agent("b")
    assert list(env.agents()) == [a]
    with pytest.raises(GridError):
        env.agent("b")


def test_intra_site_fast():
    env = GridEnvironment()
    Pong(env, "pong", "s1")
    user = Agent(env, "user", "s1")

    def main():
        yield from user.call("pong", "ping")

    env.engine.spawn(main(), "m")
    env.run()
    assert env.engine.now < 0.1
