"""Application containers: hosting, execution, binding, failure injection."""

import pytest

from repro.errors import GridError, ServiceError
from repro.grid import (
    Agent,
    ApplicationContainer,
    EndUserService,
    GridEnvironment,
    HardwareProfile,
)
from repro.process.conditions import Atom
from repro.sim import BernoulliFailures


class _Storage(Agent):
    def __init__(self, env):
        super().__init__(env, env.storage_name, "core")
        self.objects = {}

    def handle_store(self, message):
        self.objects[message.content["key"]] = message.content["payload"]
        return {"key": message.content["key"]}

    def handle_retrieve(self, message):
        return {"payload": self.objects[message.content["key"]]}


@pytest.fixture
def env():
    out = GridEnvironment()
    _Storage(out)
    return out


@pytest.fixture
def container(env):
    node = env.add_node("n1", "siteA", HardwareProfile(speed=2.0), slots=1)
    ac = ApplicationContainer(env, "ac1", node)
    ac.host(
        EndUserService(
            "POD",
            work=10.0,
            effects={"D8": {"Classification": "Orientation File"}},
            input_condition=Atom("D1", "Classification", "=", "POD-Parameter"),
        )
    )
    return ac


def call(env, to, action, content, timeout=None):
    user = env.agent("user") if env.has_agent("user") else Agent(env, "user", "u")
    out = {}

    def main():
        try:
            out["result"] = yield from user.call(to, action, content, timeout=timeout)
        except ServiceError as exc:
            out["error"] = str(exc)

    env.engine.spawn(main(), "call")
    env.run(max_events=50_000)
    return out


class TestHosting:
    def test_duplicate_host_rejected(self, container):
        with pytest.raises(GridError):
            container.host(EndUserService("POD"))

    def test_hosted_list(self, container):
        assert container.hosted == ("POD",)

    def test_can_execute(self, env, container):
        out = call(env, "ac1", "can-execute", {"service": "POD"})
        assert out["result"]["executable"] is True
        out = call(env, "ac1", "can-execute", {"service": "NOPE"})
        assert out["result"]["executable"] is False

    def test_can_execute_node_down(self, env, container):
        container.node.up = False
        out = call(env, "ac1", "can-execute", {"service": "POD"})
        assert out["result"]["executable"] is False

    def test_hosted_services_action(self, env, container):
        out = call(env, "ac1", "hosted-services", {})
        assert out["result"]["services"] == ["POD"]


class TestExecution:
    def test_duration_scales_with_speed(self, env, container):
        start = env.engine.now
        out = call(
            env,
            "ac1",
            "execute-activity",
            {
                "service": "POD",
                "inputs": {"D1": {"Classification": "POD-Parameter"}},
            },
        )
        assert out["result"]["duration"] == pytest.approx(5.0)  # 10 work / 2.0
        assert env.engine.now - start >= 5.0

    def test_input_condition_enforced(self, env, container):
        out = call(
            env,
            "ac1",
            "execute-activity",
            {"service": "POD", "inputs": {"D1": {"Classification": "wrong"}}},
        )
        assert "input condition" in out["error"]

    def test_unknown_service_rejected(self, env, container):
        out = call(env, "ac1", "execute-activity", {"service": "GHOST"})
        assert "does not host" in out["error"]

    def test_node_down_rejected(self, env, container):
        container.node.up = False
        out = call(
            env,
            "ac1",
            "execute-activity",
            {"service": "POD", "inputs": {"D1": {"Classification": "POD-Parameter"}}},
        )
        assert "down" in out["error"]

    def test_formal_actual_binding(self, env, container):
        container.host(
            EndUserService(
                "SUM",
                work=1.0,
                compute=lambda props, payloads: (
                    {"out": {"Value": props["left"]["Value"] + props["right"]["Value"]}},
                    {},
                ),
                inputs=("left", "right"),
                outputs=("out",),
            )
        )
        out = call(
            env,
            "ac1",
            "execute-activity",
            {
                "service": "SUM",
                "inputs": {"D10": {"Value": 2}, "D11": {"Value": 3}},
                "input_order": ["D10", "D11"],
                "output_order": ["D12"],
            },
        )
        assert out["result"]["outputs"] == {"D12": {"Value": 5}}

    def test_payload_roundtrip_through_storage(self, env, container):
        storage = env.agent(env.storage_name)
        storage.objects["in/key"] = [1, 2, 3]
        container.host(
            EndUserService(
                "DOUBLE",
                work=1.0,
                compute=lambda props, payloads: (
                    {"out": {"Classification": "List"}},
                    {"out": [x * 2 for x in payloads["data"]]},
                ),
                inputs=("data",),
                outputs=("out",),
            )
        )
        out = call(
            env,
            "ac1",
            "execute-activity",
            {
                "service": "DOUBLE",
                "inputs": {"D7": {"Classification": "List"}},
                "payload_keys": {"D7": "in/key"},
                "input_order": ["D7"],
                "output_order": ["D9"],
            },
        )
        stored_key = out["result"]["payload_keys"]["D9"]
        assert storage.objects[stored_key] == [2, 4, 6]

    def test_execution_log(self, env, container):
        call(
            env,
            "ac1",
            "execute-activity",
            {"service": "POD", "inputs": {"D1": {"Classification": "POD-Parameter"}}},
        )
        assert container.executions[-1][1] == "POD"
        assert container.executions[-1][3] is True


class TestFailureInjection:
    def test_bernoulli_failures_fail_invocations(self, env):
        node = env.add_node("n2", "siteB")
        ac = ApplicationContainer(
            env,
            "ac2",
            node,
            services={"S": EndUserService("S", work=1.0, effects={"X": {"a": 1}})},
            failures=BernoulliFailures(1.0, rng=0),
        )
        out = call(env, "ac2", "execute-activity", {"service": "S", "inputs": {}})
        assert "failed" in out["error"]
        assert ac.executions[-1][3] is False

    def test_slot_released_after_failure(self, env):
        node = env.add_node("n3", "siteC", slots=1)
        ApplicationContainer(
            env,
            "ac3",
            node,
            services={"S": EndUserService("S", work=1.0, effects={})},
            failures=BernoulliFailures(1.0, rng=0),
        )
        call(env, "ac3", "execute-activity", {"service": "S", "inputs": {}})
        assert node.slots.in_use == 0
