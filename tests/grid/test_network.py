"""Network model: link profiles and delays."""

import pytest

from repro.errors import GridError
from repro.grid import LinkProfile, Network


class TestLinkProfile:
    def test_delay_formula(self):
        link = LinkProfile(latency=0.01, bandwidth=1e6)
        assert link.delay(1e6) == pytest.approx(0.01 + 1.0)

    def test_invalid_values(self):
        with pytest.raises(GridError):
            LinkProfile(latency=-1, bandwidth=1)
        with pytest.raises(GridError):
            LinkProfile(latency=0, bandwidth=0)


class TestNetwork:
    def test_loopback_fast(self):
        net = Network()
        assert net.delay("a", "a", 1e9) < 0.01

    def test_default_wan_for_unknown_pairs(self):
        net = Network()
        assert net.delay("x", "y", 0.0) == pytest.approx(0.05)

    def test_explicit_link_symmetric(self):
        net = Network()
        net.connect("a", "b", LinkProfile(0.001, 1e9))
        assert net.delay("a", "b", 1000) == net.delay("b", "a", 1000)
        assert net.delay("a", "b", 1000) < net.delay("a", "c", 1000)

    def test_self_link_rejected(self):
        with pytest.raises(GridError):
            Network().connect("a", "a", LinkProfile(0.1, 1.0))

    def test_sites_tracked(self):
        net = Network()
        net.connect("a", "b", LinkProfile(0.1, 1.0))
        net.add_site("c")
        assert net.sites == ("a", "b", "c")

    def test_slow_cluster_is_poor_for_fine_grain(self):
        """The Section-1 observation: high latency + low bandwidth makes a
        site a poor choice for fine-grain (many small messages) work."""
        net = Network()
        net.connect("user", "goodcluster", LinkProfile(0.0001, 10e9))
        net.connect("user", "badcluster", LinkProfile(0.1, 1e6))
        small_messages = sum(
            net.delay("user", "goodcluster", 1_000) for _ in range(100)
        )
        small_messages_bad = sum(
            net.delay("user", "badcluster", 1_000) for _ in range(100)
        )
        assert small_messages_bad > 100 * small_messages
