"""Messages and mailboxes."""

import pytest

from repro.errors import GridError
from repro.grid import Mailbox, Message, Performative
from repro.sim import Engine


def msg(**kwargs):
    defaults = dict(
        sender="a",
        receiver="b",
        performative=Performative.REQUEST,
        action="do",
    )
    defaults.update(kwargs)
    return Message(**defaults)


class TestMessage:
    def test_conversation_assigned_per_router(self):
        from repro.grid import GridEnvironment

        env = GridEnvironment()
        first, second = msg(), msg()
        env.route(first)
        env.route(second)
        assert first.conversation != second.conversation
        # A second environment restarts its own stream: ids no longer leak
        # through a process-global counter.
        other = GridEnvironment()
        third = msg()
        other.route(third)
        assert third.conversation == first.conversation

    def test_reply_swaps_endpoints_keeps_conversation(self):
        original = msg()
        reply = original.reply(Performative.INFORM, {"x": 1})
        assert reply.sender == "b" and reply.receiver == "a"
        assert reply.conversation == original.conversation
        assert reply.action == original.action
        assert reply.content == {"x": 1}

    def test_is_error(self):
        assert msg(performative=Performative.FAILURE).is_error
        assert msg(performative=Performative.REFUSE).is_error
        assert not msg(performative=Performative.INFORM).is_error


class TestMailbox:
    def test_queue_then_receive(self):
        engine = Engine()
        box = Mailbox(engine, "me")
        box.deliver(msg(action="first"))
        box.deliver(msg(action="second"))
        got = []

        def reader():
            a = yield box.receive()
            b = yield box.receive()
            got.extend([a.action, b.action])

        engine.spawn(reader(), "r")
        engine.run()
        assert got == ["first", "second"]

    def test_receive_then_deliver(self):
        engine = Engine()
        box = Mailbox(engine, "me")
        got = []

        def reader():
            m = yield box.receive()
            got.append((m.action, engine.now))

        engine.spawn(reader(), "r")
        engine.schedule(5.0, box.deliver, msg(action="late"))
        engine.run()
        assert got == [("late", 5.0)]

    def test_double_receiver_rejected(self):
        engine = Engine()
        box = Mailbox(engine, "me")
        box.receive()
        with pytest.raises(GridError):
            box.receive()

    def test_len(self):
        engine = Engine()
        box = Mailbox(engine, "me")
        assert len(box) == 0
        box.deliver(msg())
        assert len(box) == 1
