"""Agent RPC, handler dispatch, timeouts, crash semantics."""

import pytest

from repro.errors import ServiceError
from repro.grid import Agent, GridEnvironment, Performative


class Echo(Agent):
    def handle_echo(self, message):
        return {"echo": message.content.get("text", "")}

    def handle_slow(self, message):
        yield 100.0
        return {"late": True}

    def handle_boom(self, message):
        raise ServiceError("kaput")

    def handle_relay(self, message):
        # nested RPC from inside a handler
        result = yield from self.call("echo2", "echo", {"text": "deep"})
        return {"via": result["echo"]}


@pytest.fixture
def env():
    return GridEnvironment()


def run_call(env, caller, to, action, content=None, timeout=None):
    out = {}

    def main():
        try:
            result = yield from caller.call(to, action, content, timeout=timeout)
            out["result"] = result
        except ServiceError as exc:
            out["error"] = str(exc)

    env.engine.spawn(main(), "main")
    env.run(max_events=10_000)
    return out


def test_rpc_roundtrip(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    out = run_call(env, user, "echo1", "echo", {"text": "hi"})
    assert out["result"] == {"echo": "hi"}


def test_unknown_action_refused(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    out = run_call(env, user, "echo1", "nothere")
    assert "does not provide" in out["error"]


def test_handler_service_error_becomes_failure(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    out = run_call(env, user, "echo1", "boom")
    assert "kaput" in out["error"]


def test_timeout_on_slow_handler(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    out = run_call(env, user, "echo1", "slow", timeout=10.0)
    assert "timed out" in out["error"]


def test_timeout_cancelled_on_reply(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    out = run_call(env, user, "echo1", "echo", {"text": "x"}, timeout=500.0)
    assert out["result"]["echo"] == "x"
    # The pending timeout timer must not keep the clock running to 500.
    assert env.engine.now < 10.0


def test_crashed_agent_drops_traffic(env):
    echo = Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    echo.crash()
    out = run_call(env, user, "echo1", "echo", {"text": "x"}, timeout=5.0)
    assert "timed out" in out["error"]
    assert env.dropped


def test_restart_recovers(env):
    echo = Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    echo.crash()
    echo.restart()
    out = run_call(env, user, "echo1", "echo", {"text": "x"})
    assert out["result"]["echo"] == "x"


def test_nested_rpc_from_handler(env):
    Echo(env, "relay1", "s1")
    Echo(env, "echo2", "s2")
    user = Agent(env, "user", "s3")
    out = run_call(env, user, "relay1", "relay")
    assert out["result"] == {"via": "deep"}


def test_concurrent_handlers_dont_block(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    results = []

    def main():
        slow = env.engine.spawn(_call(user, "echo1", "slow"), "slow")
        fast_result = yield from user.call("echo1", "echo", {"text": "quick"})
        results.append(("fast", fast_result, env.engine.now))
        yield slow

    def _call(agent, to, action):
        result = yield from agent.call(to, action)
        results.append((action, result, env.engine.now))

    env.engine.spawn(main(), "main")
    env.run(max_events=10_000)
    # The quick echo returns long before the slow handler finishes.
    assert results[0][0] == "fast"
    assert results[0][2] < 10.0
    assert results[1][2] >= 100.0


def test_message_trace_recorded(env):
    Echo(env, "echo1", "s1")
    user = Agent(env, "user", "s2")
    run_call(env, user, "echo1", "echo", {"text": "x"})
    actions = env.trace.actions()
    assert ("user", "echo1", "request", "echo") in actions
    assert ("echo1", "user", "inform", "echo") in actions


def test_duplicate_agent_name_rejected(env):
    Agent(env, "dup", "s1")
    from repro.errors import GridError

    with pytest.raises(GridError):
        Agent(env, "dup", "s2")
