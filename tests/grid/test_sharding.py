"""Consistent-hash ring and bus-level shard routing."""

import pytest

from repro.grid.messages import Message, Performative
from repro.grid.sharding import ShardRing, ShardRouter, stable_hash

CASE_IDS = [f"case-{index}" for index in range(1000)]


def _msg(receiver, content=None, conversation=""):
    return Message(
        sender="tester",
        receiver=receiver,
        performative=Performative.REQUEST,
        action="execute-task",
        content=content or {},
        conversation=conversation,
    )


class TestStableHash:
    def test_is_process_independent(self):
        # blake2b, not the salted builtin hash: the value is a constant.
        assert stable_hash("case-0") == stable_hash("case-0")
        assert stable_hash("case-0") != stable_hash("case-1")
        assert 0 <= stable_hash("anything") < 2**64

    def test_two_rings_agree(self):
        a = ShardRing(["s0", "s1", "s2"])
        b = ShardRing(["s0", "s1", "s2"])
        assert [a.owner(key) for key in CASE_IDS] == [
            b.owner(key) for key in CASE_IDS
        ]


class TestShardRing:
    def test_rejects_degenerate_construction(self):
        with pytest.raises(ValueError):
            ShardRing([])
        with pytest.raises(ValueError):
            ShardRing(["s0"], replicas=0)

    def test_membership_errors(self):
        ring = ShardRing(["s0", "s1"])
        with pytest.raises(ValueError):
            ring.add("s0")
        with pytest.raises(ValueError):
            ring.remove("s9")
        ring.remove("s1")
        with pytest.raises(ValueError):
            ring.remove("s0")

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_uniform_spread_over_1k_cases(self, shards):
        ring = ShardRing([f"s{k}" for k in range(shards)])
        counts = ring.spread(CASE_IDS)
        assert sum(counts.values()) == len(CASE_IDS)
        expected = len(CASE_IDS) / shards
        # 64 virtual nodes per shard keep every shard within 2x of fair.
        for shard, count in counts.items():
            assert count > expected / 2, (shard, counts)
            assert count < expected * 2, (shard, counts)

    def test_add_moves_only_keys_onto_new_shard(self):
        ring = ShardRing(["s0", "s1", "s2"])
        before = {key: ring.owner(key) for key in CASE_IDS}
        ring.add("s3")
        moved = [key for key in CASE_IDS if ring.owner(key) != before[key]]
        # Every moved key lands on the new shard, nothing reshuffles
        # between survivors...
        assert moved and all(ring.owner(key) == "s3" for key in moved)
        # ...and the movement is bounded around the fair share 1/N.
        assert len(moved) < 2 * len(CASE_IDS) / 4

    def test_remove_moves_only_the_removed_shards_keys(self):
        ring = ShardRing(["s0", "s1", "s2", "s3"])
        before = {key: ring.owner(key) for key in CASE_IDS}
        ring.remove("s3")
        for key in CASE_IDS:
            if before[key] == "s3":
                assert ring.owner(key) != "s3"
            else:
                # Survivors keep every key they already owned.
                assert ring.owner(key) == before[key]

    def test_add_then_remove_restores_ownership(self):
        ring = ShardRing(["s0", "s1"])
        before = {key: ring.owner(key) for key in CASE_IDS}
        ring.add("s2")
        ring.remove("s2")
        assert {key: ring.owner(key) for key in CASE_IDS} == before


class TestShardRouter:
    def _router(self):
        ring = ShardRing(["s0", "s1"])
        return ring, ShardRouter(
            ring,
            targets={
                "coordination": {
                    "s0": "coordination@s0", "s1": "coordination@s1"
                },
                "brokerage": {"s0": "brokerage@s0", "s1": "brokerage@s1"},
            },
            keys={"brokerage": ("service",)},
        )

    def test_routes_case_traffic_by_task_id(self):
        ring, router = self._router()
        message = _msg("coordination", {"task": "case-7"})
        assert router.resolve(message) == f"coordination@{ring.owner('case-7')}"

    def test_case_field_beats_task_field(self):
        ring, router = self._router()
        message = _msg("coordination", {"case": "case-1", "task": "case-2"})
        assert router.resolve(message) == f"coordination@{ring.owner('case-1')}"

    def test_keyless_traffic_falls_back_to_conversation(self):
        ring, router = self._router()
        message = _msg("coordination", {}, conversation="conv-9")
        assert router.resolve(message) == f"coordination@{ring.owner('conv-9')}"

    def test_registry_traffic_keys_on_service_name(self):
        ring, router = self._router()
        message = _msg("brokerage", {"service": "ingest", "task": "case-3"})
        assert router.resolve(message) == f"brokerage@{ring.owner('ingest')}"

    def test_non_sharded_receiver_is_untouched(self):
        _, router = self._router()
        assert router.resolve(_msg("storage", {"task": "case-1"})) is None

    def test_identity_map_at_one_shard(self):
        ring = ShardRing(["s0"])
        router = ShardRouter(ring, targets={"coordination": {"s0": "coordination"}})
        message = _msg("coordination", {"task": "case-4"})
        assert router.resolve(message) == "coordination"
