"""Migration data transformations (Section 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid.transfer import (
    COMPRESSION_RATIO,
    TransferSpec,
    execute_plan,
    plan_transfer,
)


class TestPlanning:
    def test_no_transformations_needed(self):
        plan = plan_transfer(TransferSpec(1e6), dest_byte_order="little")
        assert plan.steps == ()
        assert plan.wire_size == 1e6
        assert plan.delivered_spec == plan.source_spec

    def test_byteswap_between_unlike_architectures(self):
        plan = plan_transfer(
            TransferSpec(1e6, byte_order="big"), dest_byte_order="little"
        )
        assert [s.kind for s in plan.steps] == ["byteswap"]
        assert plan.delivered_spec.byte_order == "little"

    def test_compression_shrinks_wire(self):
        plan = plan_transfer(TransferSpec(1e6), compress_over_wan=True)
        assert [s.kind for s in plan.steps] == ["compress", "decompress"]
        assert plan.wire_size == pytest.approx(1e6 * COMPRESSION_RATIO)
        assert not plan.delivered_spec.compressed

    def test_encryption_symmetric(self):
        plan = plan_transfer(TransferSpec(1e6), encrypt_in_transit=True)
        assert [s.kind for s in plan.steps] == ["encrypt", "decrypt"]

    def test_full_pipeline_order(self):
        plan = plan_transfer(
            TransferSpec(1e6, byte_order="big"),
            dest_byte_order="little",
            encrypt_in_transit=True,
            compress_over_wan=True,
        )
        assert [s.kind for s in plan.steps] == [
            "compress", "encrypt", "decrypt", "decompress", "byteswap",
        ]

    def test_already_compressed_not_recompressed(self):
        plan = plan_transfer(
            TransferSpec(1e6, compressed=True), compress_over_wan=True
        )
        assert [s.kind for s in plan.steps] == ["decompress"]
        assert plan.wire_size == 1e6

    def test_opaque_delivery_skips_unpacking(self):
        plan = plan_transfer(
            TransferSpec(1e6, byte_order="big"),
            dest_byte_order="little",
            compress_over_wan=True,
            deliver_plain=False,
        )
        assert [s.kind for s in plan.steps] == ["compress"]
        assert plan.delivered_spec.compressed

    def test_invalid_byte_order(self):
        with pytest.raises(GridError):
            TransferSpec(1.0, byte_order="middle")
        with pytest.raises(GridError):
            plan_transfer(TransferSpec(1.0), dest_byte_order="pdp")


class TestExecution:
    def test_costs_split_by_side(self):
        plan = plan_transfer(
            TransferSpec(10e6),
            encrypt_in_transit=True,
            compress_over_wan=True,
        )
        wire, src, dst = execute_plan(plan, source_speed=2.0, dest_speed=1.0)
        assert wire == pytest.approx(4e6)
        # source: compress(0.2) + encrypt(0.4) per 10 MB, at speed 2
        assert src == pytest.approx((0.2 + 0.4) * 10 / 2.0)
        # destination sees 4 MB: decrypt(0.4) + decompress(0.1)
        assert dst == pytest.approx((0.4 + 0.1) * 4 / 1.0)

    def test_zero_steps_zero_cost(self):
        plan = plan_transfer(TransferSpec(1e6))
        assert execute_plan(plan) == (1e6, 0.0, 0.0)

    def test_invalid_speed(self):
        plan = plan_transfer(TransferSpec(1e6))
        with pytest.raises(GridError):
            execute_plan(plan, source_speed=0.0)

    def test_compression_tradeoff_shape(self):
        """Compressing pays on slow links, costs on fast ones."""
        size = 100e6
        plain = plan_transfer(TransferSpec(size))
        packed = plan_transfer(TransferSpec(size), compress_over_wan=True)

        def total_time(plan, bandwidth):
            wire, src, dst = execute_plan(plan)
            return src + wire / bandwidth + dst

        slow, fast = 1e6, 10e9
        assert total_time(packed, slow) < total_time(plain, slow)
        assert total_time(packed, fast) > total_time(plain, fast)


@given(
    size=st.floats(0, 1e9),
    src_order=st.sampled_from(["little", "big"]),
    dst_order=st.sampled_from(["little", "big"]),
    compress=st.booleans(),
    encrypt=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_plain_delivery_always_native(size, src_order, dst_order, compress, encrypt):
    plan = plan_transfer(
        TransferSpec(size, byte_order=src_order),
        dest_byte_order=dst_order,
        compress_over_wan=compress,
        encrypt_in_transit=encrypt,
        deliver_plain=True,
    )
    delivered = plan.delivered_spec
    assert not delivered.compressed
    assert not delivered.encrypted
    assert delivered.byte_order == dst_order
    assert plan.wire_size <= max(size, 1e-12) or size == 0


class TestContainerIntegration:
    def test_foreign_payload_costs_conversion_time(self):
        from repro.grid import (
            Agent,
            ApplicationContainer,
            EndUserService,
            GridEnvironment,
            HardwareProfile,
        )
        from repro.errors import ServiceError

        env = GridEnvironment()

        class Storage(Agent):
            def __init__(self, env):
                super().__init__(env, env.storage_name, "core")
                self.meta = {
                    "blob": {"format": {"size": 50e6, "byte_order": "big"}}
                }
                self.objects = {"blob": b"..."}

            def handle_retrieve(self, message):
                key = message.content["key"]
                return {"payload": self.objects[key], "meta": self.meta.get(key, {})}

            def handle_store(self, message):
                self.objects[message.content["key"]] = message.content["payload"]
                return {}

        Storage(env)
        node = env.add_node(
            "n1", "siteA", HardwareProfile(speed=1.0, byte_order="little")
        )
        ac = ApplicationContainer(env, "ac1", node)
        ac.host(EndUserService("S", work=1.0, effects={"OUT": {"ok": True}},
                               inputs=("data",), outputs=("OUT",)))
        user = Agent(env, "user", "u")
        out = {}

        def main():
            out["r"] = yield from user.call(
                "ac1",
                "execute-activity",
                {"service": "S", "inputs": {"D": {}},
                 "payload_keys": {"D": "blob"},
                 "input_order": ["D"], "output_order": ["OUT"]},
            )

        env.engine.spawn(main(), "m")
        env.run(max_events=10_000)
        # byteswap on 50 MB at 0.1 work/MB = 5 s on a speed-1 node
        assert env.engine.now >= 5.0
        assert ac.transfers and ac.transfers[0][2] == ("byteswap",)
