"""Checkpointing of long-lasting activities (Section-1 requirement)."""

import pytest

from repro.errors import ServiceError
from repro.grid import (
    Agent,
    ApplicationContainer,
    EndUserService,
    GridEnvironment,
)
from repro.sim import BernoulliFailures


class _Storage(Agent):
    def __init__(self, env):
        super().__init__(env, env.storage_name, "core")
        self.objects = {}

    def handle_store(self, message):
        self.objects[message.content["key"]] = message.content["payload"]
        return {"key": message.content["key"]}

    def handle_retrieve(self, message):
        if message.content["key"] not in self.objects:
            raise ServiceError("missing")
        return {"payload": self.objects[message.content["key"]]}

    def handle_delete(self, message):
        return {"deleted": self.objects.pop(message.content["key"], None) is not None}


def build(failures=None, chunks=5):
    env = GridEnvironment()
    storage = _Storage(env)
    node = env.add_node("n1", "siteA", slots=1)
    ac = ApplicationContainer(
        env,
        "ac1",
        node,
        services={
            "LONG": EndUserService(
                "LONG",
                work=100.0,
                effects={"OUT": {"Status": "done"}},
                checkpointable=True,
                checkpoint_chunks=chunks,
            )
        },
        failures=failures,
    )
    user = Agent(env, "user", "u")
    return env, storage, ac, user


def call(env, user, content, timeout=None):
    out = {}

    def main():
        try:
            out["result"] = yield from user.call(
                "ac1", "execute-activity", content, timeout=timeout
            )
        except ServiceError as exc:
            out["error"] = str(exc)

    env.engine.spawn(main(), "call")
    env.run(max_events=100_000)
    return out


def test_success_deletes_checkpoint():
    env, storage, ac, user = build()
    out = call(env, user, {"service": "LONG", "inputs": {},
                           "checkpoint_key": "ckpt/t/LONG"})
    assert out["result"]["outputs"]["OUT"]["Status"] == "done"
    assert "ckpt/t/LONG" not in storage.objects


def test_failure_leaves_progress():
    env, storage, ac, user = build(failures=BernoulliFailures(1.0, rng=0))
    out = call(env, user, {"service": "LONG", "inputs": {},
                           "checkpoint_key": "ckpt/t/LONG"})
    assert "failed at checkpoint" in out["error"]
    # With p=1 the first slice fails, so no progress is recorded; the
    # checkpoint record may be absent — that is valid resume-from-zero.
    assert storage.objects.get("ckpt/t/LONG", {"chunks_done": 0})["chunks_done"] == 0


def test_retry_resumes_from_checkpoint():
    env, storage, ac, user = build()
    # Seed a checkpoint: 4 of 5 chunks already done by a previous attempt.
    storage.objects["ckpt/t/LONG"] = {"chunks_done": 4, "chunks": 5}
    start = env.engine.now
    out = call(env, user, {"service": "LONG", "inputs": {},
                           "checkpoint_key": "ckpt/t/LONG"})
    assert "result" in out
    elapsed = env.engine.now - start
    # Only one of five slices (100 work / 5 = 20s) plus messaging overhead.
    assert elapsed < 0.5 * 100.0


def test_uncheckpointed_without_key_runs_monolithically():
    env, storage, ac, user = build()
    out = call(env, user, {"service": "LONG", "inputs": {}})
    assert "result" in out
    assert storage.objects == {}


def test_partial_failures_eventually_finish_cheaper():
    """The point of checkpointing: across retries, completed slices are
    never recomputed."""
    failures = BernoulliFailures(0.6, rng=4)
    env, storage, ac, user = build(failures=failures, chunks=10)

    attempts = 0
    result = {}

    def driver():
        nonlocal attempts
        while attempts < 50:
            attempts += 1
            try:
                reply = yield from user.call(
                    "ac1",
                    "execute-activity",
                    {"service": "LONG", "inputs": {},
                     "checkpoint_key": "ckpt/t/LONG"},
                )
                result.update(reply)
                return
            except ServiceError:
                continue

    env.engine.spawn(driver(), "driver")
    env.run(max_events=500_000)
    assert result, "never completed"
    # Total compute time across all retries is bounded: every slice is paid
    # for at most once plus the failed slice per attempt.  Without
    # checkpoints, expected time would be far larger (restart from zero).
    slice_time = 100.0 / 10
    assert env.engine.now <= (10 + attempts) * slice_time + 5.0


def test_fraction_scaling_matches_monolithic():
    """should_fail_fraction over N slices ~ should_fail once."""
    mono = BernoulliFailures(0.3, rng=1)
    sliced = BernoulliFailures(0.3, rng=2)
    n = 20_000
    mono_rate = sum(mono.should_fail("c") for _ in range(n)) / n

    def one_run():
        return any(sliced.should_fail_fraction("c", 1 / 5) for _ in range(5))

    sliced_rate = sum(one_run() for _ in range(n)) / n
    assert abs(mono_rate - sliced_rate) < 0.02
