"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Population Size" in out and "200" in out


def test_figures_subset(capsys):
    assert main(["figures", "fig4_7", "fig12_13"]) == 0
    out = capsys.readouterr().out
    assert "Figures 4-7" in out
    assert "Figures 12-13" in out


def test_figures_unknown_name(capsys):
    assert main(["figures", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_validate_ok(tmp_path, capsys):
    wf = tmp_path / "wf.txt"
    wf.write_text("BEGIN; A; {FORK {B} {C} JOIN}; END")
    assert main(["validate", str(wf)]) == 0
    assert "OK: 3 end-user" in capsys.readouterr().out


def test_validate_invalid(tmp_path, capsys):
    wf = tmp_path / "wf.txt"
    wf.write_text("BEGIN; {FORK {A} JOIN}; END")
    assert main(["validate", str(wf)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_validate_missing_file(capsys):
    assert main(["validate", "/no/such/file"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_tiny(capsys):
    # Exercise the table2 path with a non-default run count via argv.
    # (Uses the full Table-1 GP config; 1 run keeps it quick.)
    assert main(["table2", "--runs", "1", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "Average Fitness" in out


def test_render_writes_dot_files(tmp_path, capsys):
    out = tmp_path / "figs"
    assert main(["render", "--out", str(out)]) == 0
    fig10 = (out / "fig10_process.dot").read_text()
    fig11 = (out / "fig11_plan_tree.dot").read_text()
    assert fig10.startswith('digraph "PD-3DSD"')
    assert fig11.count("->") == 9


def test_trace_export_writes_valid_telemetry(tmp_path, capsys):
    import json

    from repro.obs.export import validate_chrome_trace

    out = tmp_path / "traces"
    assert main([
        "trace", "export", "--cases", "2", "--containers", "2",
        "--out", str(out),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "2/2 cases" in stdout
    document = json.loads((out / "trace.chrome.json").read_text())
    assert validate_chrome_trace(document) > 0
    lines = (out / "spans.jsonl").read_text().splitlines()
    assert all(json.loads(line)["span_id"] for line in lines)


def test_profile_prints_attribution_table(capsys):
    assert main(["profile", "case-1", "--cases", "2", "--containers", "2"]) == 0
    out = capsys.readouterr().out
    assert "case case-1" in out
    assert "coverage=" in out
    assert "activity" in out


def test_trace_export_case_filter(tmp_path, capsys):
    import json

    out = tmp_path / "traces"
    assert main([
        "trace", "export", "--cases", "2", "--containers", "2",
        "--case", "case-1", "--out", str(out),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "case case-1" in stdout
    lines = (out / "spans.jsonl").read_text().splitlines()
    spans = [json.loads(line) for line in lines]
    assert spans
    # exactly one case root survives the filter, and it is case-1
    case_roots = [s for s in spans if s["kind"] == "case"]
    assert [s["name"] for s in case_roots] == ["case-1"]


def test_trace_export_unknown_case_fails(tmp_path, capsys):
    assert main([
        "trace", "export", "--cases", "2", "--containers", "2",
        "--case", "case-99", "--out", str(tmp_path / "t"),
    ]) == 1
    assert "case-99" in capsys.readouterr().err


def test_journal_prints_timeline_and_stats(capsys):
    assert main(["journal", "case-1", "--cases", "2", "--containers", "2"]) == 0
    out = capsys.readouterr().out
    assert "case-intake" in out
    assert "case-complete" in out
    assert "dispatch" in out
    assert '"appended"' in out


def test_journal_unknown_case_fails(capsys):
    assert main(["journal", "ghost", "--cases", "2", "--containers", "2"]) == 1


def test_journal_purge_reports_counters(capsys):
    assert main([
        "journal", "case-0", "--cases", "2", "--containers", "2", "--purge",
    ]) == 0
    out = capsys.readouterr().out
    assert "purged" in out


def test_lineage_dot_output(capsys):
    assert main([
        "lineage", "out", "--case", "case-0",
        "--cases", "2", "--containers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert out.lstrip().startswith("digraph")
    assert "->" in out


def test_lineage_json_output(capsys):
    import json

    assert main([
        "lineage", "out", "--case", "case-0", "--format", "json",
        "--cases", "2", "--containers", "2",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["root"].endswith(":out")
    assert payload["activities"]


def test_lineage_unknown_key_fails(capsys):
    assert main([
        "lineage", "nothing-here", "--cases", "2", "--containers", "2",
    ]) == 1
