"""Capacity resources: FIFO grants, releases, utilization."""

import pytest

from repro.errors import SimulationError
from repro.sim import CapacityResource, Engine


def test_capacity_enforced():
    engine = Engine()
    res = CapacityResource(engine, 2)
    log = []

    def worker(i):
        grant = yield res.acquire()
        log.append(("start", i, engine.now))
        yield 10.0
        res.release(grant)
        log.append(("end", i, engine.now))

    for i in range(4):
        engine.spawn(worker(i), f"w{i}")
    engine.run()
    starts = [(i, t) for kind, i, t in log if kind == "start"]
    assert starts == [(0, 0.0), (1, 0.0), (2, 10.0), (3, 10.0)]


def test_fifo_order():
    engine = Engine()
    res = CapacityResource(engine, 1)
    order = []

    def worker(i):
        grant = yield res.acquire()
        order.append(i)
        yield 1.0
        res.release(grant)

    for i in range(5):
        engine.spawn(worker(i), f"w{i}")
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_try_acquire():
    engine = Engine()
    res = CapacityResource(engine, 1)
    grant = res.try_acquire()
    assert grant is not None
    assert res.try_acquire() is None
    res.release(grant)
    assert res.try_acquire() is not None


def test_double_release_rejected():
    engine = Engine()
    res = CapacityResource(engine, 1)
    grant = res.try_acquire()
    res.release(grant)
    with pytest.raises(SimulationError):
        res.release(grant)


def test_cross_resource_release_rejected():
    engine = Engine()
    a = CapacityResource(engine, 1, "a")
    b = CapacityResource(engine, 1, "b")
    grant = a.try_acquire()
    with pytest.raises(SimulationError):
        b.release(grant)


def test_queued_count():
    engine = Engine()
    res = CapacityResource(engine, 1)

    def holder():
        grant = yield res.acquire()
        yield 10.0
        res.release(grant)

    def waiter():
        grant = yield res.acquire()
        res.release(grant)

    engine.spawn(holder(), "h")
    engine.spawn(waiter(), "w1")
    engine.spawn(waiter(), "w2")
    engine.run(until=5.0)
    assert res.queued == 2


def test_utilization_full():
    engine = Engine()
    res = CapacityResource(engine, 1)

    def worker():
        grant = yield res.acquire()
        yield 10.0
        res.release(grant)

    engine.spawn(worker(), "w")
    engine.run()
    assert res.utilization() == pytest.approx(1.0)


def test_utilization_half():
    engine = Engine()
    res = CapacityResource(engine, 2)

    def worker():
        grant = yield res.acquire()
        yield 10.0
        res.release(grant)

    engine.spawn(worker(), "w")
    engine.run()
    assert res.utilization() == pytest.approx(0.5)


def test_invalid_capacity():
    with pytest.raises(SimulationError):
        CapacityResource(Engine(), 0)
