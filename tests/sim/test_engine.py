"""Discrete-event engine: ordering, processes, signals, joins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(3.0, log.append, "c")
        engine.schedule(1.0, log.append, "a")
        engine.schedule(2.0, log.append, "b")
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_broken_by_schedule_order(self):
        engine = Engine()
        log = []
        for tag in "abc":
            engine.schedule(1.0, log.append, tag)
        engine.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_cancelled_events_skipped(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, log.append, "x")
        handle.cancelled = True
        engine.schedule(2.0, log.append, "y")
        engine.run()
        assert log == ["y"]

    def test_run_until(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, log.append, "a")
        engine.schedule(5.0, log.append, "b")
        engine.run(until=2.0)
        assert log == ["a"]
        assert engine.now == 2.0
        assert engine.pending == 1
        engine.run()
        assert log == ["a", "b"]

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=10)


class TestProcesses:
    def test_delay_yield(self):
        engine = Engine()
        log = []

        def proc():
            log.append(("start", engine.now))
            yield 2.5
            log.append(("end", engine.now))
            return 42

        handle = engine.spawn(proc())
        engine.run()
        assert log == [("start", 0.0), ("end", 2.5)]
        assert handle.done and handle.result == 42

    def test_join_other_process(self):
        engine = Engine()
        results = []

        def worker():
            yield 5.0
            return "done"

        def main():
            value = yield engine.spawn(worker(), "w")
            results.append((value, engine.now))

        engine.spawn(main(), "m")
        engine.run()
        assert results == [("done", 5.0)]

    def test_join_already_finished_process(self):
        engine = Engine()
        results = []
        worker = engine.spawn(iter([]), "w") if False else None

        def quick():
            return "fast"
            yield  # pragma: no cover

        handle = engine.spawn(quick(), "q")

        def late():
            yield 10.0
            value = yield handle
            results.append(value)

        engine.spawn(late(), "l")
        engine.run()
        assert results == ["fast"]

    def test_signal_wakes_waiters(self):
        engine = Engine()
        signal = engine.signal("evt")
        woken = []

        def waiter(tag):
            payload = yield signal
            woken.append((tag, payload, engine.now))

        engine.spawn(waiter("a"), "a")
        engine.spawn(waiter("b"), "b")
        engine.schedule(3.0, signal.fire, "hello")
        engine.run()
        assert woken == [("a", "hello", 3.0), ("b", "hello", 3.0)]

    def test_signal_fires_once(self):
        engine = Engine()
        signal = engine.signal()
        signal.fire(1)
        with pytest.raises(SimulationError):
            signal.fire(2)

    def test_late_waiter_resumes_immediately(self):
        engine = Engine()
        signal = engine.signal()
        signal.fire("早")
        got = []

        def late():
            value = yield signal
            got.append(value)

        engine.spawn(late(), "late")
        engine.run()
        assert got == ["早"]

    def test_negative_yield_rejected(self):
        engine = Engine()

        def bad():
            yield -1.0

        engine.spawn(bad(), "bad")
        with pytest.raises(SimulationError):
            engine.run()

    def test_unsupported_yield_rejected(self):
        engine = Engine()

        def bad():
            yield "nope"

        engine.spawn(bad(), "bad")
        with pytest.raises(SimulationError):
            engine.run()

    def test_spawn_requires_generator(self):
        with pytest.raises(SimulationError):
            Engine().spawn(lambda: None)  # type: ignore[arg-type]


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_completion_times_sorted(delays):
    """Whatever the schedule order, events execute in nondecreasing time."""
    engine = Engine()
    seen = []
    for delay in delays:
        engine.schedule(delay, lambda: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
