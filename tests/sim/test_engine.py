"""Discrete-event engine: ordering, processes, signals, joins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(3.0, log.append, "c")
        engine.schedule(1.0, log.append, "a")
        engine.schedule(2.0, log.append, "b")
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_broken_by_schedule_order(self):
        engine = Engine()
        log = []
        for tag in "abc":
            engine.schedule(1.0, log.append, tag)
        engine.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_cancelled_events_skipped(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, log.append, "x")
        handle.cancelled = True
        engine.schedule(2.0, log.append, "y")
        engine.run()
        assert log == ["y"]

    def test_run_until(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, log.append, "a")
        engine.schedule(5.0, log.append, "b")
        engine.run(until=2.0)
        assert log == ["a"]
        assert engine.now == 2.0
        assert engine.pending == 1
        engine.run()
        assert log == ["a", "b"]

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=10)


class TestProcesses:
    def test_delay_yield(self):
        engine = Engine()
        log = []

        def proc():
            log.append(("start", engine.now))
            yield 2.5
            log.append(("end", engine.now))
            return 42

        handle = engine.spawn(proc())
        engine.run()
        assert log == [("start", 0.0), ("end", 2.5)]
        assert handle.done and handle.result == 42

    def test_join_other_process(self):
        engine = Engine()
        results = []

        def worker():
            yield 5.0
            return "done"

        def main():
            value = yield engine.spawn(worker(), "w")
            results.append((value, engine.now))

        engine.spawn(main(), "m")
        engine.run()
        assert results == [("done", 5.0)]

    def test_join_already_finished_process(self):
        engine = Engine()
        results = []
        worker = engine.spawn(iter([]), "w") if False else None

        def quick():
            return "fast"
            yield  # pragma: no cover

        handle = engine.spawn(quick(), "q")

        def late():
            yield 10.0
            value = yield handle
            results.append(value)

        engine.spawn(late(), "l")
        engine.run()
        assert results == ["fast"]

    def test_signal_wakes_waiters(self):
        engine = Engine()
        signal = engine.signal("evt")
        woken = []

        def waiter(tag):
            payload = yield signal
            woken.append((tag, payload, engine.now))

        engine.spawn(waiter("a"), "a")
        engine.spawn(waiter("b"), "b")
        engine.schedule(3.0, signal.fire, "hello")
        engine.run()
        assert woken == [("a", "hello", 3.0), ("b", "hello", 3.0)]

    def test_signal_fires_once(self):
        engine = Engine()
        signal = engine.signal()
        signal.fire(1)
        with pytest.raises(SimulationError):
            signal.fire(2)

    def test_late_waiter_resumes_immediately(self):
        engine = Engine()
        signal = engine.signal()
        signal.fire("早")
        got = []

        def late():
            value = yield signal
            got.append(value)

        engine.spawn(late(), "late")
        engine.run()
        assert got == ["早"]

    def test_negative_yield_rejected(self):
        engine = Engine()

        def bad():
            yield -1.0

        engine.spawn(bad(), "bad")
        with pytest.raises(SimulationError):
            engine.run()

    def test_unsupported_yield_rejected(self):
        engine = Engine()

        def bad():
            yield "nope"

        engine.spawn(bad(), "bad")
        with pytest.raises(SimulationError):
            engine.run()

    def test_spawn_requires_generator(self):
        with pytest.raises(SimulationError):
            Engine().spawn(lambda: None)  # type: ignore[arg-type]


class TestCancelAndPending:
    def test_cancel_method_skips_event_and_updates_pending(self):
        engine = Engine()
        log = []
        handle = engine.schedule(1.0, log.append, "x")
        engine.schedule(2.0, log.append, "y")
        assert engine.pending == 2
        engine.cancel(handle)
        assert engine.pending == 1
        engine.run()
        assert log == ["y"]
        assert engine.pending == 0

    def test_pending_tracks_mixed_schedule_and_cancel(self):
        engine = Engine()
        handles = [
            engine.schedule(float(i % 3), lambda: None) for i in range(50)
        ]
        for handle in handles[::2]:
            engine.cancel(handle)
        assert engine.pending == 25
        engine.run()
        assert engine.pending == 0

    def test_run_until_advances_clock_past_only_cancelled_events(self):
        # Regression: a queue holding nothing but cancelled events must
        # still advance the clock to `until` instead of stalling at the
        # cancelled head.
        engine = Engine()
        for delay in (1.0, 1.5):
            engine.cancel(engine.schedule(delay, lambda: None))
        engine.run(until=2.0)
        assert engine.now == 2.0
        assert engine.pending == 0

    def test_cancelled_pops_do_not_charge_max_events(self):
        engine = Engine()
        log = []
        for _ in range(10):
            engine.cancel(engine.schedule(1.0, log.append, "dead"))
        engine.schedule(2.0, log.append, "live")
        engine.run(max_events=1)  # ten cancelled pops must cost nothing
        assert log == ["live"]


class TestBatchedVsLegacyKernels:
    """The batched tick-deque kernel must order exactly like the legacy
    one-event heap kernel for every observable interleaving."""

    def test_same_tick_ordering_stable_across_kernels(self):
        def run(batched):
            engine = Engine(batched=batched)
            log = []

            def worker(tag, delay):
                yield delay
                log.append((tag, engine.now))
                if tag == "a":
                    # Same-tick work scheduled mid-dispatch lands after
                    # the already-queued same-tick events.
                    engine.schedule(0.0, log.append, ("a-extra", engine.now))

            for tag, delay in (
                ("a", 1.0), ("b", 1.0), ("c", 1.0), ("d", 2.0),
            ):
                engine.spawn(worker(tag, delay), tag)
            engine.run()
            return log

        assert run(True) == run(False)

    def test_multi_waiter_signal_resumption_order(self):
        def run(batched):
            engine = Engine(batched=batched)
            signal = engine.signal("s")
            order = []

            def waiter(tag):
                yield signal
                order.append((tag, engine.now))

            for tag in "abcde":
                engine.spawn(waiter(tag), tag)
            engine.schedule(1.0, signal.fire, None)
            engine.run()
            return order

        batched = run(True)
        assert batched == run(False)
        assert [tag for tag, _ in batched] == list("abcde")

    def test_spawn_inside_step_determinism(self):
        def run(batched):
            engine = Engine(batched=batched)
            log = []

            def child(i):
                log.append(("child", i, engine.now))
                yield 0.5
                log.append(("child-done", i, engine.now))

            def parent():
                for i in range(3):
                    engine.spawn(child(i), f"c{i}")
                yield 0.0
                log.append(("parent", engine.now))

            engine.spawn(parent(), "p")
            engine.run()
            return log

        assert run(True) == run(False)

    def test_randomized_schedules_order_equivalent(self):
        # Property-style: seeded random schedules (same-tick bursts,
        # cancellations, dispatch-time rescheduling) must execute in the
        # identical order on both kernels.
        import random

        def run(ops, batched):
            engine = Engine(batched=batched)
            log = []

            def make(tag):
                def action():
                    log.append((tag, engine.now))
                    if tag % 5 == 0:
                        engine.schedule(
                            0.0, lambda: log.append((tag, "nested", engine.now))
                        )
                return action

            cancelled = []
            for delay, tag, cancel in ops:
                handle = engine.schedule(delay, make(tag))
                if cancel:
                    cancelled.append(handle)
            for handle in cancelled:
                engine.cancel(handle)
            engine.run()
            return log

        for seed in range(12):
            rng = random.Random(seed)
            ops = [
                (
                    rng.choice((0.0, 0.0, 0.5, 1.0, 2.0)),
                    i,
                    rng.random() < 0.2,
                )
                for i in range(40)
            ]
            assert run(ops, True) == run(ops, False), f"seed {seed}"


class TestCoalesce:
    def test_opt_in_default_off(self):
        assert Engine().coalesce is False
        assert Engine(coalesce=True).coalesce is True

    def test_fire_resumes_waiters_inline(self):
        engine = Engine(coalesce=True)
        signal = engine.signal("s")
        log = []

        def waiter():
            yield signal
            log.append("waiter")

        def firer():
            log.append("before")
            signal.fire(None)
            log.append("after")
            yield 0.0

        engine.spawn(waiter(), "w")
        engine.spawn(firer(), "f")
        engine.run()
        # Inline resumption: the waiter ran inside fire(), between the
        # firer's two statements (the default kernel would log it last).
        assert log == ["before", "waiter", "after"]

    def test_late_waiter_still_goes_through_queue(self):
        # Parking on an already-fired signal resumes via a queued event,
        # not inline — coalesced recursion stays bounded by agent-chain
        # depth, not queue depth.
        engine = Engine(coalesce=True)
        signal = engine.signal("s")
        signal.fire("v")
        log = []

        def late():
            value = yield signal
            log.append(value)

        engine.spawn(late(), "late")  # first step runs inline at spawn
        assert log == []  # ...but the fired-signal park still queues
        engine.run()
        assert log == ["v"]

    def test_deterministic_across_runs(self):
        def run():
            engine = Engine(coalesce=True)
            log = []
            signals = [engine.signal(f"s{i}") for i in range(3)]

            def producer():
                for i, signal in enumerate(signals):
                    yield 0.5
                    signal.fire(i)

            def consumer(tag):
                for signal in signals:
                    value = yield signal
                    log.append((tag, value, engine.now))

            engine.spawn(consumer("a"), "a")
            engine.spawn(consumer("b"), "b")
            engine.spawn(producer(), "p")
            engine.run()
            return log, engine.now, engine.events_processed

        assert run() == run()


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_completion_times_sorted(delays):
    """Whatever the schedule order, events execute in nondecreasing time."""
    engine = Engine()
    seen = []
    for delay in delays:
        engine.schedule(delay, lambda: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
