"""Failure models: Bernoulli invocation failures, crash/restart cycling."""

import pytest

from repro.errors import SimulationError
from repro.sim import BernoulliFailures, CrashRestartModel, Engine


class TestBernoulli:
    def test_zero_probability_never_fails(self):
        failures = BernoulliFailures(0.0, rng=0)
        assert not any(failures.should_fail("c") for _ in range(100))

    def test_one_probability_always_fails(self):
        failures = BernoulliFailures(1.0, rng=0)
        assert all(failures.should_fail("c") for _ in range(10))
        assert failures.log.count("invocation-failure") == 10

    def test_rate_approximate(self):
        failures = BernoulliFailures(0.3, rng=1)
        hits = sum(failures.should_fail("c") for _ in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_per_component_override(self):
        failures = BernoulliFailures(
            0.0, rng=0, per_component={"flaky": 1.0}
        )
        assert failures.should_fail("flaky")
        assert not failures.should_fail("solid")

    def test_invalid_probability(self):
        with pytest.raises(SimulationError):
            BernoulliFailures(1.5)

    def test_deterministic_under_seed(self):
        a = [BernoulliFailures(0.5, rng=7).should_fail("c") for _ in range(1)]
        b = [BernoulliFailures(0.5, rng=7).should_fail("c") for _ in range(1)]
        assert a == b


class TestCrashRestart:
    def test_cycles_logged(self):
        engine = Engine()
        model = CrashRestartModel(mttf=10.0, mttr=2.0, rng=0)
        state = {"up": True}
        model.attach(
            engine,
            "node1",
            on_crash=lambda: state.update(up=False),
            on_restart=lambda: state.update(up=True),
        )
        engine.run(until=200.0)
        crashes = model.log.count("crash")
        restarts = model.log.count("restart")
        assert crashes > 0
        assert abs(crashes - restarts) <= 1

    def test_none_mttf_disables(self):
        engine = Engine()
        model = CrashRestartModel(mttf=None)
        model.attach(engine, "n", lambda: None, lambda: None)
        engine.run(until=100.0)
        assert model.log.count() == 0
        assert engine.events_processed == 0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            CrashRestartModel(mttf=0.0)
        with pytest.raises(SimulationError):
            CrashRestartModel(mttf=1.0, mttr=0.0)

    def test_mean_uptime_near_mttf(self):
        engine = Engine()
        model = CrashRestartModel(mttf=50.0, mttr=1.0, rng=3)
        model.attach(engine, "n", lambda: None, lambda: None)
        engine.run(until=50_000.0)
        crashes = model.log.count("crash")
        # ~ 50000 / 51 ≈ 980 cycles; loose bounds for stochastic variation
        assert 700 < crashes < 1300
