"""Metric collection: tallies and time series."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MetricSet, Tally, TimeSeries


class TestTally:
    def test_empty(self):
        tally = Tally()
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_known_values(self):
        tally = Tally()
        for v in (1.0, 2.0, 3.0, 4.0):
            tally.observe(v)
        assert tally.mean == pytest.approx(2.5)
        assert tally.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert tally.minimum == 1.0 and tally.maximum == 4.0

    def test_as_dict(self):
        tally = Tally()
        tally.observe(2.0)
        d = tally.as_dict()
        assert d["count"] == 1 and d["mean"] == 2.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, values):
        tally = Tally()
        for v in values:
            tally.observe(v)
        assert tally.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert tally.std == pytest.approx(np.std(values, ddof=1), rel=1e-6, abs=1e-5)


class TestTimeSeries:
    def test_time_average_piecewise(self):
        ts = TimeSeries()
        ts.observe(0.0, 1.0)
        ts.observe(10.0, 3.0)  # value 1 for [0,10)
        assert ts.time_average(horizon=20.0) == pytest.approx((1 * 10 + 3 * 10) / 20)

    def test_empty(self):
        assert TimeSeries().time_average() == 0.0

    def test_single_point(self):
        ts = TimeSeries()
        ts.observe(5.0, 7.0)
        assert ts.time_average() == 7.0

    def test_zero_length_horizon(self):
        # Horizon at (or before) the first observation: no time has
        # accumulated, so the average is the value in effect then —
        # previously this divided by a zero span.
        ts = TimeSeries()
        ts.observe(5.0, 7.0)
        ts.observe(10.0, 9.0)
        assert ts.time_average(horizon=5.0) == 7.0
        assert ts.time_average(horizon=1.0) == 7.0

    def test_coincident_observations_at_horizon(self):
        # Gauges sampled at t=0 share a timestamp: the value in effect at
        # the horizon is the *last* observation at or before it.
        ts = TimeSeries()
        ts.observe(0.0, 1.0)
        ts.observe(0.0, 4.0)
        assert ts.time_average(horizon=0.0) == 4.0


class TestMetricSet:
    def test_named_access(self):
        metrics = MetricSet()
        metrics.observe("latency", 1.0)
        metrics.observe("latency", 3.0)
        metrics.observe_at("queue", 0.0, 2.0)
        assert metrics.tally("latency").mean == 2.0
        assert metrics.timeseries("queue").values == [2.0]
        assert "latency" in metrics.as_dict()
